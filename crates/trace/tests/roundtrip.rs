//! JSONL round-trip coverage: every event kind and every field value
//! variant must survive serialize → file → parse unchanged through
//! `trace::agg`'s reader. This is the contract the whole analysis tier
//! (trace_report, perf_gate, trajectory tooling) rests on.

use ood_trace::sink::JsonlSink;
use ood_trace::{agg, Event, EventKind, Sink};

/// One event per [`EventKind`] variant, with fields covering every
/// [`Value`] variant, JSON escaping, and extreme numerics.
fn all_variant_events() -> Vec<Event> {
    vec![
        Event::new(EventKind::Span, "train/epoch/batch")
            .with("dur_us", 12_345i64)
            .with("depth", 3usize),
        Event::new(EventKind::Counter, "reweight/inner_iters").with("value", u64::MAX / 2),
        Event::new(EventKind::Gauge, "tensor/threads").with("value", 4.0f64),
        Event::new(EventKind::Hist, "reweight/final_dec_loss")
            .with("count", 7usize)
            .with("mean", 0.125f64)
            .with("min", -1e-300f64)
            .with("max", 1e300f64)
            .with("p50", 0.1f64)
            .with("p95", 0.2f64)
            .with("p99", 0.25f64),
        Event::new(EventKind::Event, "run_manifest")
            .with("schema", 1i64)
            .with("bin", "round \"trip\"\nwith\tescapes\u{1}")
            .with("seed", i64::MAX)
            .with("neg", i64::MIN)
            .with("pool", true)
            .with("resumed", false)
            .with("frac", 0.02f32)
            .with("unicode", "é λ 漢"),
    ]
}

#[test]
fn every_event_variant_round_trips_through_agg_reader() {
    let dir = std::env::temp_dir().join(format!("trace-roundtrip-{}", std::process::id()));
    let path = dir.join("trace.jsonl");
    let events = all_variant_events();

    // Write through the real sink (no global state needed: Sink::emit
    // takes the event directly).
    let mut sink = JsonlSink::create(&path).expect("create jsonl");
    for e in &events {
        sink.emit(e);
    }
    sink.flush();

    let back = agg::read_trace(&path).expect("parse trace back");
    assert_eq!(events, back, "events changed across the JSONL round trip");

    // And the analysis layer consumes the stream without loss: the span
    // lands in the tree, counter/gauge/hist keep their values, the
    // manifest is surfaced.
    let a = agg::analyze(&back);
    assert_eq!(a.events, events.len());
    let span = a.find("train/epoch/batch").expect("span in tree");
    assert_eq!(span.total_us, 12_345);
    assert_eq!(a.counters["reweight/inner_iters"], (u64::MAX / 2) as i64);
    assert_eq!(a.gauges["tensor/threads"], 4.0);
    assert_eq!(
        a.histograms["reweight/final_dec_loss"]
            .field("max")
            .unwrap()
            .as_f64(),
        Some(1e300)
    );
    let manifest = a.manifest.expect("manifest surfaced");
    assert_eq!(
        manifest.field("bin").unwrap().as_str(),
        Some("round \"trip\"\nwith\tescapes\u{1}")
    );
    assert_eq!(manifest.field("seed").unwrap().as_i64(), Some(i64::MAX));
    assert_eq!(manifest.field("neg").unwrap().as_i64(), Some(i64::MIN));
    assert_eq!(manifest.field("unicode").unwrap().as_str(), Some("é λ 漢"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn non_finite_floats_degrade_to_dropped_fields_not_errors() {
    // JSON has no NaN/Inf: the writer emits null, the reader drops the
    // field. The event still parses; only the poisoned field is lost.
    let dir = std::env::temp_dir().join(format!("trace-roundtrip-nan-{}", std::process::id()));
    let path = dir.join("trace.jsonl");
    let e = Event::new(EventKind::Gauge, "g")
        .with("value", f64::NAN)
        .with("ok", 1.5f64);
    let mut sink = JsonlSink::create(&path).expect("create jsonl");
    sink.emit(&e);
    sink.flush();
    let back = agg::read_trace(&path).expect("parse");
    assert_eq!(back.len(), 1);
    assert!(back[0].field("value").is_none());
    assert_eq!(back[0].field("ok").unwrap().as_f64(), Some(1.5));
    std::fs::remove_dir_all(&dir).ok();
}
