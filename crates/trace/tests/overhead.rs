//! Tracing-overhead guard: while no sink is attached, the span/metric hot
//! path must stay allocation-free and near-free in time. The whole
//! workspace leans on this — instrumentation is left compiled into every
//! hot loop on the promise that a detached tracer costs one relaxed
//! atomic load per call.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// System allocator wrapper counting every allocation in the process.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Serializes the tests in this file: both depend on the process-global
/// detached state and the global allocation counter.
static SERIAL: Mutex<()> = Mutex::new(());

/// One round of the instrumented hot path, detached: spans, counters,
/// gauges, histograms and a structured event per iteration.
fn hot_path_round(iters: u64) {
    for i in 0..iters {
        let _span = ood_trace::span!("hot/loop");
        ood_trace::metrics::counter_add("hot/ops", 1);
        ood_trace::metrics::gauge_set("hot/gauge", i as f64);
        ood_trace::metrics::observe("hot/latency", i as f64);
        ood_trace::emit_event("hot_event", &[("i", ood_trace::Value::Int(i as i64))]);
    }
}

#[test]
fn detached_hot_path_does_not_allocate() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    ood_trace::detach_all();
    // Warm up any lazy global state (mutex init, thread-local stacks).
    hot_path_round(10);

    // The counter is process-global, so another runtime thread could in
    // principle allocate mid-window; take the best of several trials to
    // keep the signal exact without being flaky.
    let mut min_delta = u64::MAX;
    for _ in 0..5 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        hot_path_round(10_000);
        let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
        min_delta = min_delta.min(delta);
    }
    assert_eq!(
        min_delta, 0,
        "detached span/metric/event hot path allocated {min_delta} times over 10k iterations"
    );
}

#[test]
fn detached_hot_path_costs_nanoseconds() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    ood_trace::detach_all();
    hot_path_round(100); // warm up

    // Baseline: the same loop shape with no instrumentation at all.
    let iters = 200_000u64;
    let t0 = std::time::Instant::now();
    for i in 0..iters {
        std::hint::black_box(i);
    }
    let bare = t0.elapsed();

    let t0 = std::time::Instant::now();
    hot_path_round(iters);
    let traced = t0.elapsed();

    // Five recording calls per iteration; a detached call is an atomic
    // load and a branch, so even slow CI machines stay far under this.
    let per_iter_ns = traced.saturating_sub(bare).as_nanos() as f64 / iters as f64;
    assert!(
        per_iter_ns < 1_000.0,
        "detached instrumentation costs {per_iter_ns:.0} ns per iteration (bare {:?}, traced {:?})",
        bare,
        traced
    );
}
