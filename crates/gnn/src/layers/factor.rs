//! FactorGCN layer (Yang et al.): disentangles the input graph into several
//! factor graphs with learned edge gates, aggregates each factor
//! independently, and concatenates the factor representations.

use super::Conv;
use graph::GraphBatch;
use tensor::nn::{Linear, Module, Param};
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape};

/// One disentanglement factor: an edge-gating network and a feature
/// projection for the gated aggregation.
struct Factor {
    gate: Linear,
    project: Linear,
}

/// A FactorGCN layer with `num_factors` factor graphs. Each factor `k`
/// computes edge gates `σ(g_k([h_src ‖ h_dst]))`, aggregates gated
/// messages, projects them, and the factor outputs are concatenated:
/// the output dim is `num_factors * factor_dim`.
pub struct FactorConv {
    factors: Vec<Factor>,
    factor_dim: usize,
}

impl FactorConv {
    /// Build a layer with `num_factors` factors whose concatenated output
    /// has `out_dim` features (`out_dim` must be divisible by
    /// `num_factors`).
    pub fn new(in_dim: usize, out_dim: usize, num_factors: usize, rng: &mut Rng) -> Self {
        assert!(
            num_factors > 0 && out_dim.is_multiple_of(num_factors),
            "out_dim {out_dim} not divisible by factors {num_factors}"
        );
        let factor_dim = out_dim / num_factors;
        let factors = (0..num_factors)
            .map(|_| Factor {
                gate: Linear::new(2 * in_dim, 1, rng),
                project: Linear::new(in_dim, factor_dim, rng),
            })
            .collect();
        FactorConv {
            factors,
            factor_dim,
        }
    }

    /// Number of factors.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }
}

impl Conv for FactorConv {
    fn forward(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        batch: &GraphBatch,
        _mode: Mode,
        _rng: &mut Rng,
    ) -> NodeId {
        let n = batch.num_nodes();
        let src = tape.index_select(x, batch.edge_src.clone());
        let dst = tape.index_select(x, batch.edge_dst.clone());
        let pair = tape.concat_cols(&[src, dst]);
        let mut outs = Vec::with_capacity(self.factors.len());
        for f in &mut self.factors {
            let logits = f.gate.forward(tape, pair);
            let gates = tape.sigmoid(logits); // [E, 1]
            let gated = tape.mul(src, gates);
            let agg = tape.scatter_add_rows(gated, batch.edge_dst.clone(), n);
            let proj = f.project.forward(tape, agg);
            outs.push(tape.tanh(proj));
        }
        tape.concat_cols(&outs)
    }

    fn out_dim(&self) -> usize {
        self.factor_dim * self.factors.len()
    }
}

impl Module for FactorConv {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = Vec::new();
        for f in &mut self.factors {
            p.extend(f.gate.params_mut());
            p.extend(f.project.params_mut());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{Graph, Label};
    use tensor::Tensor;

    fn toy_batch() -> GraphBatch {
        let mut g = Graph::new(3, Tensor::randn_like_seed(), Label::Class(0));
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(1, 2);
        GraphBatch::from_graphs(&[&g])
    }

    trait RandLike {
        fn randn_like_seed() -> Tensor;
    }
    impl RandLike for Tensor {
        fn randn_like_seed() -> Tensor {
            let mut rng = Rng::seed_from(7);
            Tensor::randn([3, 4], &mut rng)
        }
    }

    #[test]
    fn output_concatenates_factors() {
        let batch = toy_batch();
        let mut rng = Rng::seed_from(1);
        let mut conv = FactorConv::new(4, 8, 4, &mut rng);
        assert_eq!(conv.num_factors(), 4);
        assert_eq!(conv.out_dim(), 8);
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let h = conv.forward(&mut tape, x, &batch, Mode::Train, &mut rng);
        assert_eq!(tape.shape(h).dims(), &[3, 8]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn rejects_indivisible_dims() {
        let mut rng = Rng::seed_from(2);
        let _ = FactorConv::new(4, 7, 4, &mut rng);
    }

    #[test]
    fn gradients_reach_gates_and_projections() {
        let batch = toy_batch();
        let mut rng = Rng::seed_from(3);
        let mut conv = FactorConv::new(4, 4, 2, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let h = conv.forward(&mut tape, x, &batch, Mode::Train, &mut rng);
        let s = tape.sum(h);
        let g = tape.backward(s);
        for p in conv.params_mut() {
            assert!(g.get(p.bound_node().unwrap()).is_some());
        }
    }
}
