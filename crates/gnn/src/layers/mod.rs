//! Message-passing convolution layers.

mod factor;
mod gat;
mod gcn;
mod gin;
mod pna;
mod sage;
mod virtual_node;

pub use factor::FactorConv;
pub use gat::GatConv;
pub use gcn::GcnConv;
pub use gin::GinConv;
pub use pna::PnaConv;
pub use sage::SageConv;
pub use virtual_node::VirtualNode;

use graph::GraphBatch;
use tensor::nn::Module;
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape};

/// A message-passing layer mapping node features `[N, in]` to `[N, out]`
/// over a batched graph.
pub trait Conv: Module {
    /// One round of message passing.
    fn forward(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        batch: &GraphBatch,
        mode: Mode,
        rng: &mut Rng,
    ) -> NodeId;

    /// Output feature dimension.
    fn out_dim(&self) -> usize;
}
