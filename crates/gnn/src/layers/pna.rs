//! Principal neighbourhood aggregation layer (Corso et al.): multiple
//! aggregators (mean, max, min, std) combined with degree scalers
//! (identity, amplification, attenuation).

use super::Conv;
use graph::GraphBatch;
use tensor::nn::{BatchNorm1d, Linear, Module, Param};
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape, Tensor};

/// Number of neighborhood aggregators (mean, max, min, std).
const NUM_AGGREGATORS: usize = 4;
/// Number of degree scalers (identity, amplification, attenuation).
const NUM_SCALERS: usize = 3;

/// A PNA layer: the 4×3 aggregator/scaler tower is concatenated with the
/// node's own features and mixed by a linear layer
/// (`[x ‖ S(D) ⊗ agg(x)] W`), then BatchNorm + ReLU.
pub struct PnaConv {
    linear: Linear,
    norm: BatchNorm1d,
    in_dim: usize,
    out_dim: usize,
}

impl PnaConv {
    /// A PNA layer from `in_dim` to `out_dim` features.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        let tower = in_dim * (1 + NUM_AGGREGATORS * NUM_SCALERS);
        PnaConv {
            linear: Linear::new(tower, out_dim, rng),
            norm: BatchNorm1d::new(out_dim),
            in_dim,
            out_dim,
        }
    }
}

impl Conv for PnaConv {
    fn forward(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        batch: &GraphBatch,
        mode: Mode,
        _rng: &mut Rng,
    ) -> NodeId {
        let n = batch.num_nodes();
        assert_eq!(tape.shape(x).dim(1), self.in_dim, "PNA input dim");
        let msgs = tape.index_select(x, batch.edge_src.clone());
        // Aggregators over incoming neighbors (empty neighborhoods → 0).
        let mean = tape.segment_mean(msgs, batch.edge_dst.clone(), n);
        let maxv = tape.segment_max(msgs, batch.edge_dst.clone(), n);
        let minv = tape.segment_min(msgs, batch.edge_dst.clone(), n);
        // std = sqrt(relu(E[x²] − E[x]²) + eps)
        let sq = tape.square(msgs);
        let mean_sq = tape.segment_mean(sq, batch.edge_dst.clone(), n);
        let mean2 = tape.square(mean);
        let var = tape.sub(mean_sq, mean2);
        let var = tape.relu(var);
        let var = tape.add_scalar(var, 1e-5);
        let std = tape.sqrt(var);
        // Degree scalers: identity, amplification log(d+1)/δ, attenuation
        // δ/log(d+1); δ is the mean log-degree over this batch.
        let degs = batch.in_degrees();
        let logd: Vec<f32> = degs.iter().map(|&d| ((d + 1) as f32).ln()).collect();
        let delta = (logd.iter().sum::<f32>() / logd.len().max(1) as f32).max(1e-6);
        let amp: Vec<f32> = logd.iter().map(|&l| l / delta).collect();
        let att: Vec<f32> = logd.iter().map(|&l| delta / l.max(1e-6)).collect();
        let amp = tape.constant(Tensor::from_vec(amp, [n, 1]));
        let att = tape.constant(Tensor::from_vec(att, [n, 1]));
        let mut parts: Vec<NodeId> = vec![x];
        for agg in [mean, maxv, minv, std] {
            parts.push(agg);
            parts.push(tape.mul(agg, amp));
            parts.push(tape.mul(agg, att));
        }
        let tower = tape.concat_cols(&parts);
        let h = self.linear.forward(tape, tower);
        let h = self.norm.forward(tape, h, mode);
        tape.relu(h)
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Module for PnaConv {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.linear.params_mut();
        p.extend(self.norm.params_mut());
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.norm.buffers_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{Graph, Label};

    fn toy_batch() -> GraphBatch {
        let mut g = Graph::new(
            4,
            Tensor::from_vec(vec![1., 0., 2., 0., 3., 0., 4., 0.], [4, 2]),
            Label::Class(0),
        );
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(1, 2);
        g.add_undirected_edge(2, 3);
        GraphBatch::from_graphs(&[&g])
    }

    #[test]
    fn forward_shapes() {
        let batch = toy_batch();
        let mut rng = Rng::seed_from(1);
        let mut conv = PnaConv::new(2, 8, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let h = conv.forward(&mut tape, x, &batch, Mode::Train, &mut rng);
        assert_eq!(tape.shape(h).dims(), &[4, 8]);
    }

    #[test]
    fn tower_width_accounts_for_all_aggregator_scaler_pairs() {
        let mut rng = Rng::seed_from(2);
        let mut conv = PnaConv::new(4, 8, &mut rng);
        // Linear input = 4 * (1 + 12) = 52.
        let expected_linear = 52 * 8 + 8;
        let expected = expected_linear + 16; // + BN gamma/beta
        assert_eq!(conv.num_params(), expected);
    }

    #[test]
    fn pna_is_heavier_than_gin_at_same_width() {
        // The paper's §4.8 notes PNA has far more parameters than GIN.
        let mut rng = Rng::seed_from(3);
        let mut pna = PnaConv::new(64, 64, &mut rng);
        let mut gin = super::super::GinConv::new(64, 64, &mut rng);
        assert!(pna.num_params() > 2 * gin.num_params());
    }

    #[test]
    fn gradients_flow() {
        let batch = toy_batch();
        let mut rng = Rng::seed_from(4);
        let mut conv = PnaConv::new(2, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let h = conv.forward(&mut tape, x, &batch, Mode::Train, &mut rng);
        let s = tape.sum(h);
        let g = tape.backward(s);
        for p in conv.params_mut() {
            assert!(g.get(p.bound_node().unwrap()).is_some());
        }
    }
}
