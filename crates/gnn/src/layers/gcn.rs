//! Graph convolutional network layer (Kipf & Welling).

use super::Conv;
use graph::GraphBatch;
use tensor::nn::{BatchNorm1d, Linear, Module, Param};
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape};

/// A GCN layer with symmetric degree normalization and added self-loops:
/// `h' = ReLU(BN(Â h W + b))` where `Â = D̃^{-1/2}(A + I)D̃^{-1/2}`.
pub struct GcnConv {
    linear: Linear,
    norm: Option<BatchNorm1d>,
    activation: bool,
}

impl GcnConv {
    /// A GCN layer with BatchNorm and ReLU.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        GcnConv {
            linear: Linear::new(in_dim, out_dim, rng),
            norm: Some(BatchNorm1d::new(out_dim)),
            activation: true,
        }
    }

    /// A plain linear GCN layer (no norm, no activation); used as a score
    /// network by SAGPool.
    pub fn plain(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        GcnConv {
            linear: Linear::new(in_dim, out_dim, rng),
            norm: None,
            activation: false,
        }
    }

    /// The normalized neighborhood aggregation `Â x` as a tape node. The
    /// degree-derived norm tensors come from the batch's
    /// [`graph::NormCache`], so the O(n+E) degree sweep runs once per
    /// batch, not once per layer.
    pub fn aggregate(tape: &mut Tape, x: NodeId, batch: &GraphBatch) -> NodeId {
        let n = batch.num_nodes();
        let msgs = tape.index_select(x, batch.edge_src.clone());
        let enorm = tape.constant(batch.gcn_edge_norm_tensor());
        let weighted = tape.mul(msgs, enorm);
        let agg = tape.scatter_add_rows(weighted, batch.edge_dst.clone(), n);
        let snorm = tape.constant(batch.gcn_self_norm_tensor());
        let self_term = tape.mul(x, snorm);
        tape.add(agg, self_term)
    }
}

impl Conv for GcnConv {
    fn forward(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        batch: &GraphBatch,
        mode: Mode,
        _rng: &mut Rng,
    ) -> NodeId {
        let agg = Self::aggregate(tape, x, batch);
        let mut h = self.linear.forward(tape, agg);
        if let Some(bn) = &mut self.norm {
            h = bn.forward(tape, h, mode);
        }
        if self.activation {
            h = tape.relu(h);
        }
        h
    }

    fn out_dim(&self) -> usize {
        self.linear.out_dim()
    }
}

impl Module for GcnConv {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.linear.params_mut();
        if let Some(bn) = &mut self.norm {
            p.extend(bn.params_mut());
        }
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut tensor::Tensor> {
        self.norm
            .as_mut()
            .map(|bn| bn.buffers_mut())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{Graph, Label};
    use tensor::Tensor;

    fn toy_batch() -> GraphBatch {
        let mut g = Graph::new(
            3,
            Tensor::from_vec(vec![1., 0., 0., 1., 1., 1.], [3, 2]),
            Label::Class(0),
        );
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(1, 2);
        GraphBatch::from_graphs(&[&g])
    }

    #[test]
    fn aggregation_matches_hand_computation() {
        let batch = toy_batch();
        let mut tape = Tape::new();
        let x = tape.leaf(batch.features.clone());
        let agg = GcnConv::aggregate(&mut tape, x, &batch);
        let v = tape.value(agg);
        // Node 0: self 1/2*x0 + from node1 1/sqrt(6)*x1
        let e = 1.0 / 6f32.sqrt();
        assert!((v.at(0, 0) - (0.5 * 1.0 + e * 0.0)).abs() < 1e-5);
        assert!((v.at(0, 1) - (0.5 * 0.0 + e * 1.0)).abs() < 1e-5);
        // Node 1: self 1/3 x1 + e*(x0 + x2)
        assert!((v.at(1, 0) - (e * (1.0 + 1.0))).abs() < 1e-5);
        assert!((v.at(1, 1) - (1.0 / 3.0 + e * (0.0 + 1.0))).abs() < 1e-5);
    }

    #[test]
    fn forward_shape_and_grads() {
        let batch = toy_batch();
        let mut rng = Rng::seed_from(1);
        let mut conv = GcnConv::new(2, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let h = conv.forward(&mut tape, x, &batch, Mode::Train, &mut rng);
        assert_eq!(tape.shape(h).dims(), &[3, 4]);
        let s = tape.sum(h);
        let g = tape.backward(s);
        for p in conv.params_mut() {
            assert!(g.get(p.bound_node().unwrap()).is_some());
        }
    }

    #[test]
    fn plain_variant_has_no_activation() {
        let batch = toy_batch();
        let mut rng = Rng::seed_from(2);
        let mut conv = GcnConv::plain(2, 1, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let h = conv.forward(&mut tape, x, &batch, Mode::Eval, &mut rng);
        // Plain output can be negative (no ReLU); verify at least possible.
        assert_eq!(tape.shape(h).dims(), &[3, 1]);
    }
}
