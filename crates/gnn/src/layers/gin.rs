//! Graph isomorphism network layer (Xu et al.) — the paper's graph encoder
//! backbone ("We use GIN as the graph encoder Φ since it is shown to be one
//! of the most expressive GNNs").

use super::Conv;
use graph::GraphBatch;
use tensor::nn::{Mlp, Module, Param};
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape, Tensor};

/// A GIN layer: `h' = MLP((1 + ε) h + Σ_{j∈N(i)} h_j)` with a learnable ε
/// and a `Linear → BN → ReLU → Linear` update MLP, followed by ReLU.
pub struct GinConv {
    mlp: Mlp,
    eps: Param,
    final_activation: bool,
}

impl GinConv {
    /// Standard GIN layer with hidden width equal to the output width.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        GinConv {
            mlp: Mlp::new(&[in_dim, out_dim, out_dim], true, rng),
            eps: Param::new(Tensor::from_vec(vec![0.0], [1])),
            final_activation: true,
        }
    }

    /// GIN layer without the trailing ReLU (for the last encoder layer).
    pub fn without_final_activation(mut self) -> Self {
        self.final_activation = false;
        self
    }

    /// Current ε value (for inspection).
    pub fn eps(&self) -> f32 {
        self.eps.value.item()
    }
}

impl Conv for GinConv {
    fn forward(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        batch: &GraphBatch,
        mode: Mode,
        _rng: &mut Rng,
    ) -> NodeId {
        let n = batch.num_nodes();
        let msgs = tape.index_select(x, batch.edge_src.clone());
        let agg = tape.scatter_add_rows(msgs, batch.edge_dst.clone(), n);
        let eps = self.eps.bind(tape);
        let one_plus_eps = tape.add_scalar(eps, 1.0);
        let scaled = tape.mul(x, one_plus_eps);
        let combined = tape.add(scaled, agg);
        let mut h = self.mlp.forward(tape, combined, mode);
        if self.final_activation {
            h = tape.relu(h);
        }
        h
    }

    fn out_dim(&self) -> usize {
        self.mlp.out_dim()
    }
}

impl Module for GinConv {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.mlp.params_mut();
        p.push(&mut self.eps);
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.mlp.buffers_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{Graph, Label};

    fn toy_batch() -> GraphBatch {
        let mut g = Graph::new(
            3,
            Tensor::from_vec(vec![1., 2., 3., 4., 5., 6.], [3, 2]),
            Label::Class(0),
        );
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(1, 2);
        GraphBatch::from_graphs(&[&g])
    }

    #[test]
    fn sum_aggregation_with_eps_zero() {
        // With a fresh layer (ε = 0) the pre-MLP combination is x + Σ_N x.
        let batch = toy_batch();
        let mut rng = Rng::seed_from(1);
        let conv = GinConv::new(2, 4, &mut rng);
        assert_eq!(conv.eps(), 0.0);
        let mut tape = Tape::new();
        let x = tape.leaf(batch.features.clone());
        // Recreate the combination manually to validate the message sums.
        let msgs = tape.index_select(x, batch.edge_src.clone());
        let agg = tape.scatter_add_rows(msgs, batch.edge_dst.clone(), 3);
        let v = tape.value(agg);
        // Node 1 receives x0 + x2 = (1+5, 2+6).
        assert_eq!(v.row(1), &[6.0, 8.0]);
        // Node 0 receives only x1.
        assert_eq!(v.row(0), &[3.0, 4.0]);
    }

    #[test]
    fn forward_shape_and_eps_gradient() {
        let batch = toy_batch();
        let mut rng = Rng::seed_from(2);
        let mut conv = GinConv::new(2, 4, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let h = conv.forward(&mut tape, x, &batch, Mode::Train, &mut rng);
        assert_eq!(tape.shape(h).dims(), &[3, 4]);
        let s = tape.sum(h);
        let g = tape.backward(s);
        for p in conv.params_mut() {
            assert!(
                g.get(p.bound_node().unwrap()).is_some(),
                "param {}",
                p.key()
            );
        }
    }

    #[test]
    fn param_count_matches_structure() {
        let mut rng = Rng::seed_from(3);
        let mut conv = GinConv::new(8, 16, &mut rng);
        // MLP: (8*16+16) + BN(32) + (16*16+16), plus eps(1).
        let expected = (8 * 16 + 16) + 32 + (16 * 16 + 16) + 1;
        assert_eq!(conv.num_params(), expected);
    }
}
