//! Graph attention layer (Veličković et al., GAT — reference [6] of the
//! paper). Multi-head additive attention over incoming edges with
//! per-graph softmax normalization via segment operations.

use super::Conv;
use graph::GraphBatch;
use std::rc::Rc;
use tensor::nn::{Linear, Module, Param};
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape, Tensor};

/// One attention head: a feature projection plus the source/destination
/// halves of the additive attention vector.
struct Head {
    project: Linear,
    att_src: Param,
    att_dst: Param,
}

/// A GAT layer with `heads` attention heads whose outputs are averaged
/// (keeping the output dimension equal to `out_dim`), with self-loops via
/// an identity attention path and LeakyReLU(0.2) attention activations.
pub struct GatConv {
    heads: Vec<Head>,
    out_dim: usize,
}

impl GatConv {
    /// A GAT layer from `in_dim` to `out_dim` features with `heads` heads.
    pub fn new(in_dim: usize, out_dim: usize, heads: usize, rng: &mut Rng) -> Self {
        assert!(heads >= 1);
        let heads = (0..heads)
            .map(|_| Head {
                project: Linear::with_bias(in_dim, out_dim, false, rng),
                att_src: Param::new(Tensor::randn([out_dim, 1], rng).mul_scalar(0.1)),
                att_dst: Param::new(Tensor::randn([out_dim, 1], rng).mul_scalar(0.1)),
            })
            .collect();
        GatConv { heads, out_dim }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }
}

/// Numerically stable per-destination softmax of edge scores:
/// `softmax_e(score_e)` grouped by destination node.
fn edge_softmax(tape: &mut Tape, scores: NodeId, dst: Rc<Vec<usize>>, num_nodes: usize) -> NodeId {
    // max per destination for stability
    let maxes = tape.segment_max(scores, dst.clone(), num_nodes);
    let max_per_edge = tape.index_select(maxes, dst.clone());
    let shifted = tape.sub(scores, max_per_edge);
    let exp = tape.exp(shifted);
    let sums = tape.segment_sum(exp, dst.clone(), num_nodes);
    let sums = tape.add_scalar(sums, 1e-12);
    let sum_per_edge = tape.index_select(sums, dst);
    tape.div(exp, sum_per_edge)
}

impl Conv for GatConv {
    fn forward(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        batch: &GraphBatch,
        _mode: Mode,
        _rng: &mut Rng,
    ) -> NodeId {
        let n = batch.num_nodes();
        let mut head_outs = Vec::with_capacity(self.heads.len());
        for head in &mut self.heads {
            let h = head.project.forward(tape, x); // [N, out]
            let a_src = head.att_src.bind(tape);
            let a_dst = head.att_dst.bind(tape);
            let s_src = tape.matmul(h, a_src); // [N, 1]
            let s_dst = tape.matmul(h, a_dst); // [N, 1]
                                               // Per-edge attention logits: LeakyReLU(s_src[src] + s_dst[dst]).
            let e_src = tape.index_select(s_src, batch.edge_src.clone());
            let e_dst = tape.index_select(s_dst, batch.edge_dst.clone());
            let logits = tape.add(e_src, e_dst);
            // LeakyReLU(x) = max(x, 0) − 0.2·max(−x, 0) = relu(x) − 0.2·relu(−x)
            let pos = tape.relu(logits);
            let negl = tape.neg(logits);
            let neg = tape.relu(negl);
            let neg = tape.mul_scalar(neg, 0.2);
            let act = tape.sub(pos, neg);
            let alpha = edge_softmax(tape, act, batch.edge_dst.clone(), n);
            let msgs = tape.index_select(h, batch.edge_src.clone());
            let weighted = tape.mul(msgs, alpha);
            let agg = tape.scatter_add_rows(weighted, batch.edge_dst.clone(), n);
            // Self connection keeps isolated nodes alive.
            let combined = tape.add(agg, h);
            head_outs.push(tape.tanh(combined));
        }
        // Average heads.
        let mut acc = head_outs[0];
        for &h in &head_outs[1..] {
            acc = tape.add(acc, h);
        }
        tape.mul_scalar(acc, 1.0 / self.heads.len() as f32)
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Module for GatConv {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = Vec::new();
        for h in &mut self.heads {
            p.extend(h.project.params_mut());
            p.push(&mut h.att_src);
            p.push(&mut h.att_dst);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{Graph, Label};

    fn toy_batch() -> GraphBatch {
        let mut rng = Rng::seed_from(7);
        let mut g = Graph::new(4, Tensor::randn([4, 3], &mut rng), Label::Class(0));
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(1, 2);
        g.add_undirected_edge(2, 3);
        GraphBatch::from_graphs(&[&g])
    }

    #[test]
    fn attention_weights_sum_to_one_per_destination() {
        let batch = toy_batch();
        let mut tape = Tape::new();
        let mut rng = Rng::seed_from(1);
        let scores = tape.leaf(Tensor::randn([batch.num_edges(), 1], &mut rng));
        let alpha = edge_softmax(&mut tape, scores, batch.edge_dst.clone(), batch.num_nodes());
        let v = tape.value(alpha);
        let mut per_dst = vec![0f32; batch.num_nodes()];
        for (e, &d) in batch.edge_dst.iter().enumerate() {
            per_dst[d] += v.data()[e];
        }
        for (d, &s) in per_dst.iter().enumerate() {
            let has_in = batch.edge_dst.contains(&d);
            if has_in {
                assert!((s - 1.0).abs() < 1e-4, "dst {d} attention sums to {s}");
            }
        }
    }

    #[test]
    fn forward_shapes_and_grads() {
        let batch = toy_batch();
        let mut rng = Rng::seed_from(2);
        let mut conv = GatConv::new(3, 8, 2, &mut rng);
        assert_eq!(conv.num_heads(), 2);
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let h = conv.forward(&mut tape, x, &batch, Mode::Train, &mut rng);
        assert_eq!(tape.shape(h).dims(), &[4, 8]);
        let s = tape.sum(h);
        let g = tape.backward(s);
        for p in conv.params_mut() {
            assert!(g.get(p.bound_node().unwrap()).is_some());
        }
    }

    #[test]
    fn isolated_nodes_survive_via_self_connection() {
        let mut rng = Rng::seed_from(3);
        let g = Graph::new(2, Tensor::randn([2, 3], &mut rng), Label::Class(0));
        let batch = GraphBatch::from_graphs(&[&g]); // no edges at all
        let mut conv = GatConv::new(3, 4, 1, &mut rng);
        // GAT with zero edges: gather/scatter run on empty index lists.
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let h = conv.forward(&mut tape, x, &batch, Mode::Eval, &mut rng);
        let v = tape.value(h);
        assert!(!v.has_non_finite());
        assert!(v.frobenius_sq() > 0.0, "self path must carry features");
    }
}
