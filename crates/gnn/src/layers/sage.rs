//! GraphSAGE layer (Hamilton et al. — reference [31] of the paper):
//! mean-aggregate neighbors, concatenate with the node's own features,
//! and project.

use super::Conv;
use graph::GraphBatch;
use tensor::nn::{Linear, Module, Param};
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape};

/// A GraphSAGE-mean layer: `h' = ReLU(W · [h ‖ mean_{j∈N(i)} h_j])` with
/// (optional) L2 normalization of the output rows.
pub struct SageConv {
    linear: Linear,
    normalize: bool,
    out_dim: usize,
}

impl SageConv {
    /// A SAGE layer from `in_dim` to `out_dim` features with row
    /// normalization enabled (as in the original paper).
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut Rng) -> Self {
        SageConv {
            linear: Linear::new(2 * in_dim, out_dim, rng),
            normalize: true,
            out_dim,
        }
    }

    /// Disable the output row L2 normalization.
    pub fn without_normalization(mut self) -> Self {
        self.normalize = false;
        self
    }
}

impl Conv for SageConv {
    fn forward(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        batch: &GraphBatch,
        _mode: Mode,
        _rng: &mut Rng,
    ) -> NodeId {
        let n = batch.num_nodes();
        let msgs = tape.index_select(x, batch.edge_src.clone());
        let mean = tape.segment_mean(msgs, batch.edge_dst.clone(), n);
        let cat = tape.concat_cols(&[x, mean]);
        let h = self.linear.forward(tape, cat);
        let h = tape.relu(h);
        if self.normalize {
            // h / (‖h‖₂ + ε) per row.
            let sq = tape.square(h);
            let row_norms = tape.sum_axis(sq, tensor::ops::Axis::Cols);
            let row_norms = tape.add_scalar(row_norms, 1e-12);
            let row_norms = tape.sqrt(row_norms);
            let row_norms = tape.reshape(row_norms, [n, 1]);
            tape.div(h, row_norms)
        } else {
            h
        }
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Module for SageConv {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.linear.params_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{Graph, Label};
    use tensor::Tensor;

    fn toy_batch() -> GraphBatch {
        let mut rng = Rng::seed_from(5);
        let mut g = Graph::new(3, Tensor::randn([3, 4], &mut rng), Label::Class(0));
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(1, 2);
        GraphBatch::from_graphs(&[&g])
    }

    #[test]
    fn rows_are_unit_norm() {
        let batch = toy_batch();
        let mut rng = Rng::seed_from(1);
        let mut conv = SageConv::new(4, 6, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let h = conv.forward(&mut tape, x, &batch, Mode::Eval, &mut rng);
        let v = tape.value(h);
        for i in 0..3 {
            let norm: f32 = v.row(i).iter().map(|a| a * a).sum::<f32>().sqrt();
            // ReLU can zero a whole row; otherwise rows are unit length.
            assert!(norm < 1.0 + 1e-4, "row {i} norm {norm}");
        }
    }

    #[test]
    fn unnormalized_variant_and_grads() {
        let batch = toy_batch();
        let mut rng = Rng::seed_from(2);
        let mut conv = SageConv::new(4, 6, &mut rng).without_normalization();
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let h = conv.forward(&mut tape, x, &batch, Mode::Train, &mut rng);
        assert_eq!(tape.shape(h).dims(), &[3, 6]);
        let s = tape.sum(h);
        let g = tape.backward(s);
        for p in conv.params_mut() {
            assert!(g.get(p.bound_node().unwrap()).is_some());
        }
    }

    #[test]
    fn param_count() {
        let mut rng = Rng::seed_from(3);
        let mut conv = SageConv::new(4, 6, &mut rng);
        assert_eq!(conv.num_params(), 8 * 6 + 6);
    }
}
