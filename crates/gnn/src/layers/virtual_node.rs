//! Virtual-node augmentation (Hu et al., OGB): a latent node connected to
//! every node of its graph, giving the GCN-virtual / GIN-virtual baselines.

use graph::GraphBatch;
use tensor::nn::{Mlp, Module, Param};
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape, Tensor};

/// Per-graph virtual-node state threaded between message-passing layers.
///
/// Usage per forward pass: call [`VirtualNode::init`] once, then before
/// each conv layer call [`VirtualNode::broadcast`] to add the virtual
/// embedding to node features, and after the layer call
/// [`VirtualNode::update`] to absorb the pooled node features back.
pub struct VirtualNode {
    update_mlp: Mlp,
    dim: usize,
}

impl VirtualNode {
    /// Virtual node over `dim`-dimensional embeddings.
    pub fn new(dim: usize, rng: &mut Rng) -> Self {
        VirtualNode {
            update_mlp: Mlp::new(&[dim, dim, dim], true, rng),
            dim,
        }
    }

    /// Initial (zero) virtual embeddings: `[num_graphs, dim]`.
    pub fn init(&self, tape: &mut Tape, num_graphs: usize) -> NodeId {
        tape.constant(Tensor::zeros([num_graphs, self.dim]))
    }

    /// Add each graph's virtual embedding to its nodes: `x + vn[batch]`.
    pub fn broadcast(&self, tape: &mut Tape, x: NodeId, vn: NodeId, batch: &GraphBatch) -> NodeId {
        let expanded = tape.index_select(vn, batch.batch.clone());
        tape.add(x, expanded)
    }

    /// Update the virtual embeddings from pooled node features:
    /// `vn' = vn + MLP(vn + Σ_G x)`.
    pub fn update(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        vn: NodeId,
        batch: &GraphBatch,
        mode: Mode,
    ) -> NodeId {
        let pooled = tape.segment_sum(x, batch.batch.clone(), batch.num_graphs);
        let combined = tape.add(vn, pooled);
        let transformed = self.update_mlp.forward(tape, combined, mode);
        let transformed = tape.relu(transformed);
        tape.add(vn, transformed)
    }
}

impl Module for VirtualNode {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.update_mlp.params_mut()
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.update_mlp.buffers_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{Graph, Label};

    fn two_graph_batch() -> GraphBatch {
        let mk = |v: f32| {
            let mut g = Graph::new(2, Tensor::full([2, 3], v), Label::Class(0));
            g.add_undirected_edge(0, 1);
            g
        };
        let a = mk(1.0);
        let b = mk(2.0);
        GraphBatch::from_graphs(&[&a, &b])
    }

    #[test]
    fn broadcast_respects_graph_boundaries() {
        let batch = two_graph_batch();
        let mut rng = Rng::seed_from(1);
        let vn_mod = VirtualNode::new(3, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let vn = tape.constant(Tensor::from_vec(vec![10., 10., 10., 20., 20., 20.], [2, 3]));
        let out = vn_mod.broadcast(&mut tape, x, vn, &batch);
        let v = tape.value(out);
        assert_eq!(v.row(0), &[11., 11., 11.]);
        assert_eq!(v.row(2), &[22., 22., 22.]);
    }

    #[test]
    fn update_changes_embedding_and_grads_flow() {
        let batch = two_graph_batch();
        let mut rng = Rng::seed_from(2);
        let mut vn_mod = VirtualNode::new(3, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(batch.features.clone());
        let vn0 = vn_mod.init(&mut tape, batch.num_graphs);
        let vn1 = vn_mod.update(&mut tape, x, vn0, &batch, Mode::Train);
        assert_eq!(tape.shape(vn1).dims(), &[2, 3]);
        let s = tape.sum(vn1);
        let g = tape.backward(s);
        for p in vn_mod.params_mut() {
            assert!(g.get(p.bound_node().unwrap()).is_some());
        }
    }
}
