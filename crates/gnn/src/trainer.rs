//! Standard (ERM) training and evaluation of baseline models, plus the
//! shared loss/metric plumbing that the OOD-GNN trainer reuses.

use crate::models::GnnModel;
use datasets::metrics::{accuracy, rmse, roc_auc_multitask};
use datasets::OodBenchmark;
use graph::{GraphBatch, GraphDataset, TaskType};
use tensor::nn::Module;
use tensor::ops::loss::{bce_with_logits, cross_entropy, mse, weighted_mean};
use tensor::optim::{Adam, Optimizer};
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape, Tensor};

/// Hyper-parameters of a training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs (paper: 100).
    pub epochs: usize,
    /// Mini-batch size (paper: {64, 128, 256}).
    pub batch_size: usize,
    /// Adam learning rate (paper: {1e-4, 1e-3}).
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Gradient-norm clip (0 = off).
    pub grad_clip: f32,
    /// If `Some(k)`, evaluate validation and test every `k` epochs and also
    /// report the test metric at the best validation epoch (the paper's
    /// model-selection protocol: "hyper-parameters are tuned on the
    /// validation set").
    pub eval_every: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            batch_size: 64,
            lr: 1e-3,
            weight_decay: 1e-5,
            grad_clip: 2.0,
            eval_every: None,
        }
    }
}

/// Outcome of a training run: final metrics plus the per-epoch loss curve
/// (used by the paper's Figure 3 training-dynamics plot).
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Metric on the training split.
    pub train_metric: f32,
    /// Metric on the validation split.
    pub val_metric: f32,
    /// Metric on the (OOD) test split.
    pub test_metric: f32,
    /// Mean training loss per epoch.
    pub loss_curve: Vec<f32>,
    /// Best validation metric seen during periodic evaluation (requires
    /// `eval_every`).
    pub best_val_metric: Option<f32>,
    /// Test metric at the epoch with the best validation metric.
    pub test_at_best_val: Option<f32>,
}

/// Track the (validation, test) pair at the best validation epoch;
/// "better" respects the task direction (higher AUC/accuracy, lower RMSE).
pub struct BestTracker {
    lower_is_better: bool,
    best_val: Option<f32>,
    test_at_best: Option<f32>,
}

impl BestTracker {
    /// New tracker; `lower_is_better` for RMSE-style metrics.
    pub fn new(lower_is_better: bool) -> Self {
        BestTracker {
            lower_is_better,
            best_val: None,
            test_at_best: None,
        }
    }

    /// Observe one (validation, test) evaluation pair.
    pub fn observe(&mut self, val: f32, test: f32) {
        let better = match self.best_val {
            None => true,
            Some(b) => {
                if self.lower_is_better {
                    val < b
                } else {
                    val > b
                }
            }
        };
        if better && val.is_finite() {
            self.best_val = Some(val);
            self.test_at_best = Some(test);
        }
    }

    /// Consume into `(best_val, test_at_best_val)`.
    pub fn into_parts(self) -> (Option<f32>, Option<f32>) {
        (self.best_val, self.test_at_best)
    }

    /// Peek at `(best_val, test_at_best_val)` without consuming — used
    /// when checkpointing mid-run.
    pub fn parts(&self) -> (Option<f32>, Option<f32>) {
        (self.best_val, self.test_at_best)
    }

    /// Whether this tracker prefers lower validation metrics.
    pub fn lower_is_better(&self) -> bool {
        self.lower_is_better
    }

    /// Rebuild a tracker from checkpointed state.
    pub fn from_parts(
        lower_is_better: bool,
        best_val: Option<f32>,
        test_at_best: Option<f32>,
    ) -> Self {
        BestTracker {
            lower_is_better,
            best_val,
            test_at_best,
        }
    }
}

/// Build the per-sample loss vector for a batch of dataset indices.
/// Returns a `[batch, ]` node. Exposed for the OOD-GNN trainer.
pub fn per_sample_loss(
    tape: &mut Tape,
    logits: NodeId,
    ds: &GraphDataset,
    indices: &[usize],
) -> NodeId {
    match ds.task() {
        TaskType::MultiClass { .. } => {
            let labels = ds.class_labels(indices);
            cross_entropy(tape, logits, &labels)
        }
        TaskType::BinaryClassification { .. } => {
            let (targets, mask) = ds.binary_labels(indices);
            bce_with_logits(tape, logits, &targets, &mask)
        }
        TaskType::Regression { .. } => {
            let targets = ds.regression_targets(indices);
            mse(tape, logits, &targets)
        }
    }
}

/// Evaluate a model on a set of indices: accuracy for multi-class, mean
/// ROC-AUC for binary multi-task, RMSE for regression.
pub fn evaluate(
    model: &mut GnnModel,
    ds: &GraphDataset,
    indices: &[usize],
    batch_size: usize,
    rng: &mut Rng,
) -> f32 {
    if indices.is_empty() {
        return f32::NAN;
    }
    let mut all_preds: Vec<Tensor> = Vec::new();
    for chunk in indices.chunks(batch_size) {
        let batch = GraphBatch::from_dataset(ds, chunk);
        let mut tape = Tape::new();
        let out = model.predict(&mut tape, &batch, Mode::Eval, rng);
        all_preds.push(tape.value(out).clone());
        for p in model.params_mut() {
            p.clear_binding();
        }
    }
    let refs: Vec<&Tensor> = all_preds.iter().collect();
    let preds = Tensor::vcat(&refs);
    match ds.task() {
        TaskType::MultiClass { .. } => accuracy(&preds, &ds.class_labels(indices)),
        TaskType::BinaryClassification { .. } => {
            let (targets, mask) = ds.binary_labels(indices);
            roc_auc_multitask(&preds, &targets, &mask)
        }
        TaskType::Regression { .. } => rmse(&preds, &ds.regression_targets(indices)),
    }
}

/// Train a model by weighted empirical risk minimization with uniform
/// weights (plain ERM) and report train/val/test metrics.
pub fn train_erm(
    model: &mut GnnModel,
    bench: &OodBenchmark,
    config: &TrainConfig,
    seed: u64,
) -> TrainReport {
    let ds = &bench.dataset;
    let mut rng = Rng::seed_from(seed);
    let mut opt = Adam::new(config.lr)
        .with_weight_decay(config.weight_decay)
        .with_grad_clip(config.grad_clip);
    let mut loss_curve = Vec::with_capacity(config.epochs);
    let mut tracker = BestTracker::new(ds.task().is_regression());
    let n = bench.split.train.len();
    let _train_span = trace::span!("train_erm");
    for epoch in 0..config.epochs {
        let _epoch_span = trace::span!("epoch");
        let mut order = bench.split.train.clone();
        rng.shuffle(&mut order);
        let mut epoch_loss = 0.0;
        let mut grad_norm_sum = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let batch = GraphBatch::from_dataset(ds, chunk);
            let mut tape = Tape::new();
            let logits = model.predict(&mut tape, &batch, Mode::Train, &mut rng);
            let per_sample = per_sample_loss(&mut tape, logits, ds, chunk);
            let uniform = Tensor::ones([chunk.len()]);
            let loss = weighted_mean(&mut tape, per_sample, &uniform);
            epoch_loss += tape.value(loss).item();
            batches += 1;
            let grads = tape.backward(loss);
            let params = model.params_mut();
            if trace::enabled() {
                grad_norm_sum += tensor::optim::global_grad_norm(&params, &grads);
            }
            opt.step(params, &grads);
        }
        let denom = batches.max(1) as f32;
        loss_curve.push(if batches > 0 { epoch_loss / denom } else { 0.0 });
        if trace::enabled() {
            trace::emit_event(
                "epoch",
                &[
                    ("epoch", (epoch as i64).into()),
                    ("loss", (epoch_loss / denom).into()),
                    ("grad_norm", (grad_norm_sum / denom).into()),
                ],
            );
            trace::metrics::flush();
        }
        if let Some(k) = config.eval_every {
            if k > 0 && (epoch + 1) % k == 0 {
                let v = evaluate(model, ds, &bench.split.val, config.batch_size, &mut rng);
                let t = evaluate(model, ds, &bench.split.test, config.batch_size, &mut rng);
                tracker.observe(v, t);
            }
        }
    }
    let _ = n;
    let (best_val_metric, test_at_best_val) = tracker.into_parts();
    TrainReport {
        train_metric: evaluate(model, ds, &bench.split.train, config.batch_size, &mut rng),
        val_metric: evaluate(model, ds, &bench.split.val, config.batch_size, &mut rng),
        test_metric: evaluate(model, ds, &bench.split.test, config.batch_size, &mut rng),
        loss_curve,
        best_val_metric,
        test_at_best_val,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{BaselineKind, ModelConfig};
    use datasets::triangles::{generate, TrianglesConfig};
    use graph::{Graph, Label, Split};

    /// A tiny dataset where class = presence of an edge pattern the GNN can
    /// easily learn: class 1 graphs are triangles, class 0 are paths.
    fn easy_benchmark(n_per_class: usize) -> OodBenchmark {
        let mut graphs = Vec::new();
        let mut rng = Rng::seed_from(1);
        for i in 0..2 * n_per_class {
            let class = i % 2;
            let n = 3 + rng.below(3);
            let mut feats = Tensor::ones([n, 2]);
            for r in 0..n {
                *feats.at_mut(r, 1) = rng.unit();
            }
            let mut g = Graph::new(n, feats, Label::Class(class));
            for j in 1..n {
                g.add_undirected_edge(j - 1, j);
            }
            if class == 1 {
                g.add_undirected_edge(0, 2.min(n - 1));
            }
            graphs.push(g);
        }
        let ds = GraphDataset::new("easy", graphs, TaskType::MultiClass { classes: 2 });
        let n = ds.len();
        let train: Vec<usize> = (0..n * 8 / 10).collect();
        let val: Vec<usize> = (n * 8 / 10..n * 9 / 10).collect();
        let test: Vec<usize> = (n * 9 / 10..n).collect();
        OodBenchmark {
            dataset: ds,
            split: Split { train, val, test },
        }
    }

    #[test]
    fn erm_learns_easy_task() {
        let bench = easy_benchmark(40);
        let mut rng = Rng::seed_from(2);
        let cfg = ModelConfig {
            hidden: 16,
            layers: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let mut model = GnnModel::baseline(
            BaselineKind::Gin,
            bench.dataset.feature_dim(),
            bench.dataset.task(),
            &cfg,
            &mut rng,
        );
        let report = train_erm(
            &mut model,
            &bench,
            &TrainConfig {
                epochs: 30,
                batch_size: 16,
                lr: 3e-3,
                ..Default::default()
            },
            3,
        );
        assert!(
            report.train_metric > 0.9,
            "train acc {}",
            report.train_metric
        );
        assert!(report.test_metric > 0.8, "test acc {}", report.test_metric);
        // Loss should decrease substantially.
        let first = report.loss_curve[0];
        let last = *report.loss_curve.last().unwrap();
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }

    #[test]
    fn triangles_baseline_shows_ood_gap() {
        // Even a briefly-trained GIN should do better in-distribution than on
        // the larger OOD test graphs — the effect the paper studies.
        let bench = generate(&TrianglesConfig::scaled(0.06), 4);
        let mut rng = Rng::seed_from(5);
        let cfg = ModelConfig {
            hidden: 16,
            layers: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let mut model = GnnModel::baseline(
            BaselineKind::Gin,
            bench.dataset.feature_dim(),
            bench.dataset.task(),
            &cfg,
            &mut rng,
        );
        let report = train_erm(
            &mut model,
            &bench,
            &TrainConfig {
                epochs: 15,
                batch_size: 32,
                lr: 3e-3,
                ..Default::default()
            },
            6,
        );
        assert!(
            report.train_metric > report.test_metric,
            "expected OOD gap: train {} vs test {}",
            report.train_metric,
            report.test_metric
        );
    }

    #[test]
    fn evaluate_handles_regression() {
        use datasets::ogb::{generate as gen_ogb, OgbDataset};
        let bench = gen_ogb(OgbDataset::Esol, Some(60), 7);
        let mut rng = Rng::seed_from(8);
        let cfg = ModelConfig {
            hidden: 8,
            layers: 2,
            ..Default::default()
        };
        let mut model = GnnModel::baseline(
            BaselineKind::Gcn,
            bench.dataset.feature_dim(),
            bench.dataset.task(),
            &cfg,
            &mut rng,
        );
        let r = evaluate(&mut model, &bench.dataset, &bench.split.test, 16, &mut rng);
        assert!(r.is_finite() && r >= 0.0, "rmse {r}");
    }

    #[test]
    fn empty_split_evaluates_to_nan() {
        let bench = easy_benchmark(4);
        let mut rng = Rng::seed_from(9);
        let cfg = ModelConfig {
            hidden: 4,
            layers: 1,
            ..Default::default()
        };
        let mut model = GnnModel::baseline(
            BaselineKind::Gcn,
            bench.dataset.feature_dim(),
            bench.dataset.task(),
            &cfg,
            &mut rng,
        );
        assert!(evaluate(&mut model, &bench.dataset, &[], 8, &mut rng).is_nan());
    }
}
