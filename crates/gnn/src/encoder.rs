//! Graph encoders: the mapping Φ : G → Z from batched graphs to
//! `[num_graphs, d]` representations (the paper's §3.1).

pub use crate::pool::Readout;

use crate::layers::{Conv, FactorConv, GatConv, GcnConv, GinConv, PnaConv, SageConv, VirtualNode};
use crate::pool::{SagPool, TopKPool};
use graph::GraphBatch;
use tensor::nn::{Dropout, Linear, Module, Param};
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape};

/// Anything that encodes a batch of graphs into a representation matrix.
pub trait GraphEncoder: Module {
    /// Encode a batch into `[num_graphs, out_dim]`.
    fn encode(&mut self, tape: &mut Tape, batch: &GraphBatch, mode: Mode, rng: &mut Rng) -> NodeId;

    /// Representation dimension.
    fn out_dim(&self) -> usize;
}

/// Which convolution a [`StackedEncoder`] stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvKind {
    /// GCN layers.
    Gcn,
    /// GIN layers (the paper's backbone).
    Gin,
    /// PNA layers.
    Pna,
    /// FactorGCN layers.
    Factor {
        /// Number of disentanglement factors.
        factors: usize,
    },
    /// GAT layers with the given number of attention heads.
    Gat {
        /// Number of attention heads.
        heads: usize,
    },
    /// GraphSAGE-mean layers.
    Sage,
}

fn build_conv(kind: ConvKind, in_dim: usize, out_dim: usize, rng: &mut Rng) -> Box<dyn Conv> {
    match kind {
        ConvKind::Gcn => Box::new(GcnConv::new(in_dim, out_dim, rng)),
        ConvKind::Gin => Box::new(GinConv::new(in_dim, out_dim, rng)),
        ConvKind::Pna => Box::new(PnaConv::new(in_dim, out_dim, rng)),
        ConvKind::Factor { factors } => Box::new(FactorConv::new(in_dim, out_dim, factors, rng)),
        ConvKind::Gat { heads } => Box::new(GatConv::new(in_dim, out_dim, heads, rng)),
        ConvKind::Sage => Box::new(SageConv::new(in_dim, out_dim, rng)),
    }
}

/// A standard flat message-passing encoder: input projection → `L` conv
/// layers (optionally interleaved with a virtual node) → dropout → global
/// readout.
pub struct StackedEncoder {
    input_proj: Linear,
    convs: Vec<Box<dyn Conv>>,
    virtual_node: Option<VirtualNode>,
    dropout: Dropout,
    readout: Readout,
    hidden: usize,
}

impl StackedEncoder {
    /// Build an encoder.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's hyper-parameter list
    pub fn new(
        kind: ConvKind,
        in_dim: usize,
        hidden: usize,
        layers: usize,
        virtual_node: bool,
        readout: Readout,
        dropout_p: f32,
        rng: &mut Rng,
    ) -> Self {
        assert!(layers >= 1, "need at least one conv layer");
        let convs = (0..layers)
            .map(|_| build_conv(kind, hidden, hidden, rng))
            .collect();
        StackedEncoder {
            input_proj: Linear::new(in_dim, hidden, rng),
            convs,
            virtual_node: virtual_node.then(|| VirtualNode::new(hidden, rng)),
            dropout: Dropout::new(dropout_p),
            readout,
            hidden,
        }
    }

    /// Number of message-passing layers.
    pub fn num_layers(&self) -> usize {
        self.convs.len()
    }
}

impl GraphEncoder for StackedEncoder {
    fn encode(&mut self, tape: &mut Tape, batch: &GraphBatch, mode: Mode, rng: &mut Rng) -> NodeId {
        let feats = tape.constant(batch.features.clone());
        let mut x = self.input_proj.forward(tape, feats);
        let mut vn_state = self
            .virtual_node
            .as_ref()
            .map(|vn| vn.init(tape, batch.num_graphs));
        let n_layers = self.convs.len();
        for (i, conv) in self.convs.iter_mut().enumerate() {
            if let (Some(vn), Some(state)) = (&self.virtual_node, vn_state) {
                x = vn.broadcast(tape, x, state, batch);
            }
            x = conv.forward(tape, x, batch, mode, rng);
            x = self.dropout.forward(tape, x, mode, rng);
            if i + 1 < n_layers {
                if let (Some(vn), Some(state)) = (&mut self.virtual_node, vn_state) {
                    vn_state = Some(vn.update(tape, x, state, batch, mode));
                }
            }
        }
        self.readout.apply_batch(tape, x, batch)
    }

    fn out_dim(&self) -> usize {
        self.hidden * self.readout.multiplier()
    }
}

impl Module for StackedEncoder {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.input_proj.params_mut();
        for c in &mut self.convs {
            p.extend(c.params_mut());
        }
        if let Some(vn) = &mut self.virtual_node {
            p.extend(vn.params_mut());
        }
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut tensor::Tensor> {
        let mut b = Vec::new();
        for c in &mut self.convs {
            b.extend(c.buffers_mut());
        }
        if let Some(vn) = &mut self.virtual_node {
            b.extend(vn.buffers_mut());
        }
        b
    }
}

/// Which hierarchical pooling a [`HierarchicalEncoder`] uses per level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// TopKPool (learned projection scores).
    TopK,
    /// SAGPool (GNN attention scores).
    Sag,
}

#[allow(clippy::large_enum_variant)] // few instances per model; boxing buys nothing
enum PoolLayer {
    TopK(TopKPool),
    Sag(SagPool),
}

impl PoolLayer {
    fn forward(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        batch: &GraphBatch,
        mode: Mode,
        rng: &mut Rng,
    ) -> (NodeId, GraphBatch) {
        match self {
            PoolLayer::TopK(p) => p.forward(tape, x, batch),
            PoolLayer::Sag(p) => p.forward(tape, x, batch, mode, rng),
        }
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        match self {
            PoolLayer::TopK(p) => p.params_mut(),
            PoolLayer::Sag(p) => p.params_mut(),
        }
    }
}

/// A hierarchical encoder (TopKPool/SAGPool baselines): levels of
/// `GCN conv → pool`, with a mean‖max readout at every level summed into
/// the final graph representation (the standard Graph U-Net / SAGPool
/// classification architecture).
pub struct HierarchicalEncoder {
    input_proj: Linear,
    levels: Vec<(GcnConv, PoolLayer)>,
    hidden: usize,
}

impl HierarchicalEncoder {
    /// Build with `levels` conv+pool stages keeping `ratio` nodes each.
    pub fn new(
        kind: PoolKind,
        in_dim: usize,
        hidden: usize,
        levels: usize,
        ratio: f32,
        rng: &mut Rng,
    ) -> Self {
        assert!(levels >= 1);
        let levels = (0..levels)
            .map(|_| {
                let conv = GcnConv::new(hidden, hidden, rng);
                let pool = match kind {
                    PoolKind::TopK => PoolLayer::TopK(TopKPool::new(hidden, ratio, rng)),
                    PoolKind::Sag => PoolLayer::Sag(SagPool::new(hidden, ratio, rng)),
                };
                (conv, pool)
            })
            .collect();
        HierarchicalEncoder {
            input_proj: Linear::new(in_dim, hidden, rng),
            levels,
            hidden,
        }
    }
}

impl GraphEncoder for HierarchicalEncoder {
    fn encode(&mut self, tape: &mut Tape, batch: &GraphBatch, mode: Mode, rng: &mut Rng) -> NodeId {
        let feats = tape.constant(batch.features.clone());
        let mut x = self.input_proj.forward(tape, feats);
        let mut cur = batch.clone();
        let mut acc: Option<NodeId> = None;
        for (conv, pool) in &mut self.levels {
            let h = conv.forward(tape, x, &cur, mode, rng);
            let (pooled, sub) = pool.forward(tape, h, &cur, mode, rng);
            let level_read =
                Readout::MeanMax.apply(tape, pooled, sub.batch.clone(), sub.num_graphs);
            acc = Some(match acc {
                Some(a) => tape.add(a, level_read),
                None => level_read,
            });
            x = pooled;
            cur = sub;
        }
        acc.expect("at least one level")
    }

    fn out_dim(&self) -> usize {
        2 * self.hidden
    }
}

impl Module for HierarchicalEncoder {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.input_proj.params_mut();
        for (conv, pool) in &mut self.levels {
            p.extend(conv.params_mut());
            p.extend(pool.params_mut());
        }
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut tensor::Tensor> {
        let mut b = Vec::new();
        for (conv, _) in &mut self.levels {
            b.extend(conv.buffers_mut());
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{Graph, Label};
    use tensor::Tensor;

    fn batch() -> GraphBatch {
        let mk = |n: usize, seed: u64| {
            let mut rng = Rng::seed_from(seed);
            let mut g = Graph::new(n, Tensor::randn([n, 4], &mut rng), Label::Class(0));
            for i in 1..n {
                g.add_undirected_edge(i - 1, i);
            }
            g.add_undirected_edge(0, n - 1);
            g
        };
        let a = mk(6, 1);
        let b = mk(4, 2);
        GraphBatch::from_graphs(&[&a, &b])
    }

    #[test]
    fn stacked_encoder_shapes_all_kinds() {
        let batch = batch();
        let mut rng = Rng::seed_from(3);
        for kind in [
            ConvKind::Gcn,
            ConvKind::Gin,
            ConvKind::Pna,
            ConvKind::Factor { factors: 4 },
            ConvKind::Gat { heads: 2 },
            ConvKind::Sage,
        ] {
            let mut enc = StackedEncoder::new(kind, 4, 8, 2, false, Readout::Mean, 0.0, &mut rng);
            let mut tape = Tape::new();
            let z = enc.encode(&mut tape, &batch, Mode::Eval, &mut rng);
            assert_eq!(tape.shape(z).dims(), &[2, 8], "{kind:?}");
        }
    }

    #[test]
    fn virtual_node_variant_runs_and_differs() {
        let batch = batch();
        let mut rng = Rng::seed_from(4);
        let mut enc =
            StackedEncoder::new(ConvKind::Gin, 4, 8, 3, true, Readout::Sum, 0.0, &mut rng);
        let mut tape = Tape::new();
        let z = enc.encode(&mut tape, &batch, Mode::Eval, &mut rng);
        assert_eq!(tape.shape(z).dims(), &[2, 8]);
        // Virtual node adds parameters over the plain variant.
        let mut plain =
            StackedEncoder::new(ConvKind::Gin, 4, 8, 3, false, Readout::Sum, 0.0, &mut rng);
        assert!(enc.num_params() > plain.num_params());
    }

    #[test]
    fn hierarchical_encoder_both_kinds() {
        let batch = batch();
        let mut rng = Rng::seed_from(5);
        for kind in [PoolKind::TopK, PoolKind::Sag] {
            let mut enc = HierarchicalEncoder::new(kind, 4, 8, 2, 0.5, &mut rng);
            let mut tape = Tape::new();
            let z = enc.encode(&mut tape, &batch, Mode::Eval, &mut rng);
            assert_eq!(tape.shape(z).dims(), &[2, 16], "{kind:?}");
        }
    }

    #[test]
    fn all_params_get_gradients() {
        let batch = batch();
        let mut rng = Rng::seed_from(6);
        let mut enc =
            StackedEncoder::new(ConvKind::Gin, 4, 8, 2, true, Readout::Mean, 0.0, &mut rng);
        let mut tape = Tape::new();
        let z = enc.encode(&mut tape, &batch, Mode::Train, &mut rng);
        let s = tape.sum(z);
        let g = tape.backward(s);
        let missing = enc
            .params_mut()
            .into_iter()
            .filter(|p| g.get(p.bound_node().unwrap()).is_none())
            .count();
        assert_eq!(missing, 0);
    }

    #[test]
    fn encode_is_deterministic_in_eval() {
        let batch = batch();
        let mut rng = Rng::seed_from(7);
        let mut enc =
            StackedEncoder::new(ConvKind::Gcn, 4, 8, 2, false, Readout::Mean, 0.5, &mut rng);
        let run = |enc: &mut StackedEncoder, rng: &mut Rng| {
            let mut tape = Tape::new();
            let z = enc.encode(&mut tape, &batch, Mode::Eval, rng);
            tape.value(z).clone()
        };
        let a = run(&mut enc, &mut rng);
        let b = run(&mut enc, &mut rng);
        assert_eq!(a, b, "eval mode must not depend on the rng");
    }
}
