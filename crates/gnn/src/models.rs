//! The baseline model zoo: the eight baselines of the paper's experiments
//! (§4.1.1) assembled from encoders and a 2-layer MLP head.

use crate::encoder::{
    ConvKind, GraphEncoder, HierarchicalEncoder, PoolKind, Readout, StackedEncoder,
};
use graph::{GraphBatch, TaskType};
use tensor::nn::{Mlp, Module, Param};
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape};

/// The baselines compared in Tables 2–4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// GCN (Kipf & Welling).
    Gcn,
    /// GCN with a virtual node.
    GcnVirtual,
    /// GIN (Xu et al.).
    Gin,
    /// GIN with a virtual node.
    GinVirtual,
    /// FactorGCN (Yang et al.).
    FactorGcn,
    /// PNA (Corso et al.).
    Pna,
    /// TopKPool (Gao & Ji).
    TopKPool,
    /// SAGPool (Lee et al.).
    SagPool,
}

/// All baselines in the paper's table order.
pub const ALL_BASELINES: [BaselineKind; 8] = [
    BaselineKind::Gcn,
    BaselineKind::GcnVirtual,
    BaselineKind::Gin,
    BaselineKind::GinVirtual,
    BaselineKind::FactorGcn,
    BaselineKind::Pna,
    BaselineKind::TopKPool,
    BaselineKind::SagPool,
];

impl BaselineKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Gcn => "GCN",
            BaselineKind::GcnVirtual => "GCN-virtual",
            BaselineKind::Gin => "GIN",
            BaselineKind::GinVirtual => "GIN-virtual",
            BaselineKind::FactorGcn => "FactorGCN",
            BaselineKind::Pna => "PNA",
            BaselineKind::TopKPool => "TopKPool",
            BaselineKind::SagPool => "SAGPool",
        }
    }
}

/// Shared hyper-parameters for building models.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Hidden / representation dimension `d`.
    pub hidden: usize,
    /// Number of message-passing layers.
    pub layers: usize,
    /// Dropout probability between layers.
    pub dropout: f32,
    /// Global readout for flat encoders.
    pub readout: Readout,
    /// FactorGCN factor count.
    pub num_factors: usize,
    /// Pool keep-ratio for hierarchical baselines.
    pub pool_ratio: f32,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            hidden: 32,
            layers: 3,
            dropout: 0.2,
            // Mean pooling, as in the OGB reference models the paper builds
            // on. (Size-shift benchmarks expose graph size through an
            // explicit node-feature channel instead — see
            // `ood-datasets::social`.)
            readout: Readout::Mean,
            num_factors: 4,
            pool_ratio: 0.5,
        }
    }
}

/// An encoder + 2-layer MLP head, predicting task outputs from a batch
/// (`R ∘ Φ` in the paper's notation).
pub struct GnnModel {
    encoder: Box<dyn GraphEncoder>,
    head: Mlp,
    task: TaskType,
}

impl GnnModel {
    /// Build a baseline model for a task.
    pub fn baseline(
        kind: BaselineKind,
        in_dim: usize,
        task: TaskType,
        config: &ModelConfig,
        rng: &mut Rng,
    ) -> Self {
        let encoder: Box<dyn GraphEncoder> = match kind {
            BaselineKind::Gcn => Box::new(StackedEncoder::new(
                ConvKind::Gcn,
                in_dim,
                config.hidden,
                config.layers,
                false,
                config.readout,
                config.dropout,
                rng,
            )),
            BaselineKind::GcnVirtual => Box::new(StackedEncoder::new(
                ConvKind::Gcn,
                in_dim,
                config.hidden,
                config.layers,
                true,
                config.readout,
                config.dropout,
                rng,
            )),
            BaselineKind::Gin => Box::new(StackedEncoder::new(
                ConvKind::Gin,
                in_dim,
                config.hidden,
                config.layers,
                false,
                config.readout,
                config.dropout,
                rng,
            )),
            BaselineKind::GinVirtual => Box::new(StackedEncoder::new(
                ConvKind::Gin,
                in_dim,
                config.hidden,
                config.layers,
                true,
                config.readout,
                config.dropout,
                rng,
            )),
            BaselineKind::FactorGcn => Box::new(StackedEncoder::new(
                ConvKind::Factor {
                    factors: config.num_factors,
                },
                in_dim,
                config.hidden,
                config.layers,
                false,
                config.readout,
                config.dropout,
                rng,
            )),
            BaselineKind::Pna => Box::new(StackedEncoder::new(
                ConvKind::Pna,
                in_dim,
                config.hidden,
                config.layers,
                false,
                config.readout,
                config.dropout,
                rng,
            )),
            BaselineKind::TopKPool => Box::new(HierarchicalEncoder::new(
                PoolKind::TopK,
                in_dim,
                config.hidden,
                config.layers,
                config.pool_ratio,
                rng,
            )),
            BaselineKind::SagPool => Box::new(HierarchicalEncoder::new(
                PoolKind::Sag,
                in_dim,
                config.hidden,
                config.layers,
                config.pool_ratio,
                rng,
            )),
        };
        Self::from_encoder(encoder, task, rng)
    }

    /// Wrap an arbitrary encoder with the standard 2-layer MLP head.
    pub fn from_encoder(encoder: Box<dyn GraphEncoder>, task: TaskType, rng: &mut Rng) -> Self {
        let d = encoder.out_dim();
        let head = Mlp::new(&[d, d, task.output_dim()], false, rng);
        GnnModel {
            encoder,
            head,
            task,
        }
    }

    /// The task this model predicts.
    pub fn task(&self) -> TaskType {
        self.task
    }

    /// Encode a batch to graph representations `[B, d]` (the paper's Z).
    pub fn encode(
        &mut self,
        tape: &mut Tape,
        batch: &GraphBatch,
        mode: Mode,
        rng: &mut Rng,
    ) -> NodeId {
        self.encoder.encode(tape, batch, mode, rng)
    }

    /// Representation dimension.
    pub fn rep_dim(&self) -> usize {
        self.encoder.out_dim()
    }

    /// Full forward: logits/predictions `[B, task.output_dim()]`.
    pub fn predict(
        &mut self,
        tape: &mut Tape,
        batch: &GraphBatch,
        mode: Mode,
        rng: &mut Rng,
    ) -> NodeId {
        let z = self.encode(tape, batch, mode, rng);
        self.head.forward(tape, z, mode)
    }

    /// Predict from an existing representation node (used by OOD-GNN, which
    /// interposes on the representations).
    pub fn predict_from_rep(&mut self, tape: &mut Tape, z: NodeId, mode: Mode) -> NodeId {
        self.head.forward(tape, z, mode)
    }
}

impl Module for GnnModel {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.encoder.params_mut();
        p.extend(self.head.params_mut());
        p
    }

    fn buffers_mut(&mut self) -> Vec<&mut tensor::Tensor> {
        let mut b = self.encoder.buffers_mut();
        b.extend(self.head.buffers_mut());
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{Graph, Label};
    use tensor::Tensor;

    fn batch() -> GraphBatch {
        let mk = |n: usize, seed: u64| {
            let mut rng = Rng::seed_from(seed);
            let mut g = Graph::new(n, Tensor::randn([n, 4], &mut rng), Label::Class(0));
            for i in 1..n {
                g.add_undirected_edge(i - 1, i);
            }
            g
        };
        let a = mk(5, 1);
        let b = mk(3, 2);
        GraphBatch::from_graphs(&[&a, &b])
    }

    #[test]
    fn every_baseline_builds_and_predicts() {
        let batch = batch();
        let task = TaskType::MultiClass { classes: 7 };
        let cfg = ModelConfig {
            hidden: 8,
            layers: 2,
            ..Default::default()
        };
        let mut rng = Rng::seed_from(3);
        for kind in ALL_BASELINES {
            let mut m = GnnModel::baseline(kind, 4, task, &cfg, &mut rng);
            let mut tape = Tape::new();
            let out = m.predict(&mut tape, &batch, Mode::Eval, &mut rng);
            assert_eq!(tape.shape(out).dims(), &[2, 7], "{}", kind.name());
            assert!(m.num_params() > 0);
        }
    }

    #[test]
    fn pna_has_most_parameters() {
        // §4.8: PNA is the heavyweight baseline.
        let task = TaskType::BinaryClassification { tasks: 1 };
        let cfg = ModelConfig {
            hidden: 16,
            layers: 3,
            ..Default::default()
        };
        let mut rng = Rng::seed_from(4);
        let mut pna = GnnModel::baseline(BaselineKind::Pna, 4, task, &cfg, &mut rng);
        let mut gin = GnnModel::baseline(BaselineKind::Gin, 4, task, &cfg, &mut rng);
        assert!(pna.num_params() > 2 * gin.num_params());
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(BaselineKind::GcnVirtual.name(), "GCN-virtual");
        assert_eq!(ALL_BASELINES.len(), 8);
    }

    #[test]
    fn predict_from_rep_matches_predict() {
        let batch = batch();
        let task = TaskType::MultiClass { classes: 3 };
        let cfg = ModelConfig {
            hidden: 8,
            layers: 2,
            dropout: 0.0,
            ..Default::default()
        };
        let mut rng = Rng::seed_from(5);
        let mut m = GnnModel::baseline(BaselineKind::Gin, 4, task, &cfg, &mut rng);
        let mut tape = Tape::new();
        let z = m.encode(&mut tape, &batch, Mode::Eval, &mut rng);
        let out1 = m.predict_from_rep(&mut tape, z, Mode::Eval);
        let v1 = tape.value(out1).clone();
        let mut tape2 = Tape::new();
        let out2 = m.predict(&mut tape2, &batch, Mode::Eval, &mut rng);
        assert!(v1.max_abs_diff(tape2.value(out2)) < 1e-6);
    }
}
