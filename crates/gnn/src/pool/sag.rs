//! Self-attention graph pooling (Lee et al., SAGPool): like TopK pooling
//! but the node scores come from a graph convolution over the node
//! features, so attention is structure-aware.

use super::topk::topk_filter;
use crate::layers::{Conv, GcnConv};
use graph::GraphBatch;
use std::rc::Rc;
use tensor::nn::{Module, Param};
use tensor::rng::Rng;
use tensor::{Mode, NodeId, Tape};

/// SAGPool layer: scores = GCN(x) → `[N, 1]`, keep top-`ratio` per graph,
/// gate survivors with `tanh(score)`.
pub struct SagPool {
    score_gnn: GcnConv,
    ratio: f32,
}

impl SagPool {
    /// SAGPool over `dim` features keeping `ratio` of nodes.
    pub fn new(dim: usize, ratio: f32, rng: &mut Rng) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0);
        SagPool {
            score_gnn: GcnConv::plain(dim, 1, rng),
            ratio,
        }
    }

    /// Keep ratio.
    pub fn ratio(&self) -> f32 {
        self.ratio
    }

    /// Pool: returns gated kept features and the induced sub-batch.
    pub fn forward(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        batch: &GraphBatch,
        mode: Mode,
        rng: &mut Rng,
    ) -> (NodeId, GraphBatch) {
        let score = self.score_gnn.forward(tape, x, batch, mode, rng); // [N,1]
        let flat: Vec<f32> = tape.value(score).data().to_vec();
        let (keep_ids, sub) = topk_filter(&flat, batch, self.ratio);
        let keep_rc = Rc::new(keep_ids);
        let x_kept = tape.index_select(x, keep_rc.clone());
        let s_kept = tape.index_select(score, keep_rc);
        let gate = tape.tanh(s_kept);
        let gated = tape.mul(x_kept, gate);
        (gated, sub)
    }
}

impl Module for SagPool {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.score_gnn.params_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{Graph, Label};
    use tensor::Tensor;

    fn batch() -> GraphBatch {
        let mut g = Graph::new(5, Tensor::zeros([5, 3]), Label::Class(0));
        for i in 1..5 {
            g.add_undirected_edge(i - 1, i);
        }
        GraphBatch::from_graphs(&[&g])
    }

    #[test]
    fn pools_to_ratio_and_structure_aware_scores() {
        let batch = batch();
        let mut rng = Rng::seed_from(1);
        let mut pool = SagPool::new(3, 0.6, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::randn([5, 3], &mut rng));
        let (gated, sub) = pool.forward(&mut tape, x, &batch, Mode::Eval, &mut rng);
        assert_eq!(tape.shape(gated).dims(), &[3, 3]); // ceil(5*0.6)=3
        assert_eq!(sub.batch.len(), 3);
    }

    #[test]
    fn gradients_reach_score_network() {
        let batch = batch();
        let mut rng = Rng::seed_from(2);
        let mut pool = SagPool::new(3, 0.5, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::randn([5, 3], &mut rng));
        let (gated, _) = pool.forward(&mut tape, x, &batch, Mode::Eval, &mut rng);
        let s = tape.sum(gated);
        let g = tape.backward(s);
        for p in pool.params_mut() {
            assert!(g.get(p.bound_node().unwrap()).is_some());
        }
    }
}
