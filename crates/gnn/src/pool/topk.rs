//! TopKPool (Gao & Ji, Graph U-Nets): keep the highest-scoring `⌈ratio·n⌉`
//! nodes of each graph, gating the survivors by their (squashed) scores.

use graph::GraphBatch;
use std::rc::Rc;
use tensor::nn::{Module, Param};
use tensor::rng::Rng;
use tensor::{NodeId, Tape, Tensor};

/// Select the top-`ratio` nodes per graph by score. Returns the kept node
/// indices (ascending, so the batch vector stays grouped) and the induced
/// sub-batch (edges with both endpoints kept, remapped).
pub fn topk_filter(scores: &[f32], batch: &GraphBatch, ratio: f32) -> (Vec<usize>, GraphBatch) {
    assert_eq!(scores.len(), batch.num_nodes(), "one score per node");
    assert!(
        ratio > 0.0 && ratio <= 1.0,
        "ratio must be in (0,1], got {ratio}"
    );
    let mut keep: Vec<usize> = Vec::new();
    let mut offset = 0usize;
    for &size in &batch.graph_sizes {
        let k = ((size as f32 * ratio).ceil() as usize).clamp(1, size);
        let mut ids: Vec<usize> = (offset..offset + size).collect();
        ids.sort_by(|&a, &b| {
            scores[b]
                .partial_cmp(&scores[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut kept: Vec<usize> = ids[..k].to_vec();
        kept.sort_unstable();
        keep.extend(kept);
        offset += size;
    }
    // Remap edges.
    let mut new_id = vec![usize::MAX; batch.num_nodes()];
    for (ni, &oi) in keep.iter().enumerate() {
        new_id[oi] = ni;
    }
    let mut edge_src = Vec::new();
    let mut edge_dst = Vec::new();
    for (&s, &d) in batch.edge_src.iter().zip(batch.edge_dst.iter()) {
        if new_id[s] != usize::MAX && new_id[d] != usize::MAX {
            edge_src.push(new_id[s]);
            edge_dst.push(new_id[d]);
        }
    }
    let new_batch_vec: Vec<usize> = keep.iter().map(|&i| batch.batch[i]).collect();
    let mut graph_sizes = vec![0usize; batch.num_graphs];
    for &b in &new_batch_vec {
        graph_sizes[b] += 1;
    }
    let sub = GraphBatch {
        features: Tensor::zeros([keep.len(), 1]),
        edge_src: Rc::new(edge_src),
        edge_dst: Rc::new(edge_dst),
        batch: Rc::new(new_batch_vec),
        num_graphs: batch.num_graphs,
        graph_sizes,
        norms: graph::NormCache::default(),
    };
    (keep, sub)
}

/// TopK pooling layer: scores are a learned projection `x·p/‖p‖`; kept
/// features are gated with `tanh(score)` so gradients reach `p`.
pub struct TopKPool {
    projection: Param,
    ratio: f32,
}

impl TopKPool {
    /// TopK pooling over `dim`-dimensional features keeping `ratio` of each
    /// graph's nodes.
    pub fn new(dim: usize, ratio: f32, rng: &mut Rng) -> Self {
        assert!(ratio > 0.0 && ratio <= 1.0);
        TopKPool {
            projection: Param::new(Tensor::randn([dim, 1], rng).mul_scalar(0.1)),
            ratio,
        }
    }

    /// Keep ratio.
    pub fn ratio(&self) -> f32 {
        self.ratio
    }

    /// Pool: returns the gated kept features and the induced sub-batch.
    pub fn forward(
        &mut self,
        tape: &mut Tape,
        x: NodeId,
        batch: &GraphBatch,
    ) -> (NodeId, GraphBatch) {
        let p = self.projection.bind(tape);
        let sq = tape.square(p);
        let ssq = tape.sum(sq);
        let eps = tape.add_scalar(ssq, 1e-12);
        let norm = tape.sqrt(eps);
        let raw = tape.matmul(x, p); // [N, 1]
        let score = tape.div(raw, norm);
        let keep = {
            let s = tape.value(score);
            let flat: Vec<f32> = s.data().to_vec();
            topk_filter(&flat, batch, self.ratio)
        };
        let (keep_ids, sub) = keep;
        let keep_rc = Rc::new(keep_ids);
        let x_kept = tape.index_select(x, keep_rc.clone());
        let s_kept = tape.index_select(score, keep_rc);
        let gate = tape.tanh(s_kept);
        let gated = tape.mul(x_kept, gate);
        (gated, sub)
    }
}

impl Module for TopKPool {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.projection]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{Graph, Label};

    fn batch_two_graphs() -> GraphBatch {
        // Graph 0: 4 nodes path; graph 1: 2 nodes edge.
        let mut a = Graph::new(4, Tensor::zeros([4, 2]), Label::Class(0));
        for i in 1..4 {
            a.add_undirected_edge(i - 1, i);
        }
        let mut b = Graph::new(2, Tensor::zeros([2, 2]), Label::Class(0));
        b.add_undirected_edge(0, 1);
        GraphBatch::from_graphs(&[&a, &b])
    }

    #[test]
    fn filter_keeps_top_scores_per_graph() {
        let batch = batch_two_graphs();
        let scores = vec![0.1, 0.9, 0.5, 0.7, 0.3, 0.8];
        let (keep, sub) = topk_filter(&scores, &batch, 0.5);
        // Graph 0 keeps ceil(4*0.5)=2 best: nodes 1 and 3; graph 1 keeps 1: node 5.
        assert_eq!(keep, vec![1, 3, 5]);
        assert_eq!(sub.batch.as_ref(), &vec![0, 0, 1]);
        assert_eq!(sub.graph_sizes, vec![2, 1]);
    }

    #[test]
    fn filter_remaps_surviving_edges() {
        let batch = batch_two_graphs();
        // Keep nodes 0,1 of graph 0 (edge between them survives) + node 4.
        let scores = vec![0.9, 0.8, 0.1, 0.0, 0.9, 0.1];
        let (keep, sub) = topk_filter(&scores, &batch, 0.5);
        assert_eq!(keep, vec![0, 1, 4]);
        // Edge 0-1 survives in both directions, remapped to 0-1.
        let pairs: Vec<(usize, usize)> = sub
            .edge_src
            .iter()
            .zip(sub.edge_dst.iter())
            .map(|(&s, &d)| (s, d))
            .collect();
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 0)));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn every_graph_keeps_at_least_one_node() {
        let batch = batch_two_graphs();
        let scores = vec![0.0; 6];
        let (_, sub) = topk_filter(&scores, &batch, 0.01);
        assert_eq!(sub.graph_sizes, vec![1, 1]);
    }

    #[test]
    fn pool_layer_gates_and_shrinks() {
        let batch = batch_two_graphs();
        let mut rng = Rng::seed_from(1);
        let mut pool = TopKPool::new(2, 0.5, &mut rng);
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::randn([6, 2], &mut rng));
        let (gated, sub) = pool.forward(&mut tape, x, &batch);
        assert_eq!(tape.shape(gated).dims(), &[3, 2]);
        assert_eq!(sub.num_graphs, 2);
        let s = tape.sum(gated);
        let g = tape.backward(s);
        assert!(g.get(pool.projection.bound_node().unwrap()).is_some());
    }
}
