//! Graph-level pooling: global readouts and hierarchical top-k pooling
//! (TopKPool, SAGPool).

mod sag;
mod topk;

pub use sag::SagPool;
pub use topk::{topk_filter, TopKPool};

use graph::GraphBatch;
use std::rc::Rc;
use tensor::{NodeId, Tape};

/// Global readout turning node features `[N, d]` into graph features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readout {
    /// Sum pooling (GIN-style; size-sensitive).
    Sum,
    /// Mean pooling (size-invariant).
    Mean,
    /// Max pooling.
    Max,
    /// Concatenated mean and max (`2d` output), used by hierarchical
    /// models' per-level readout.
    MeanMax,
}

impl Readout {
    /// Output width multiplier relative to the node feature width.
    pub fn multiplier(self) -> usize {
        match self {
            Readout::MeanMax => 2,
            _ => 1,
        }
    }

    /// Apply the readout over a node→graph assignment.
    pub fn apply(
        self,
        tape: &mut Tape,
        x: NodeId,
        batch_vec: Rc<Vec<usize>>,
        num_graphs: usize,
    ) -> NodeId {
        match self {
            Readout::Sum => tape.segment_sum(x, batch_vec, num_graphs),
            Readout::Mean => tape.segment_mean(x, batch_vec, num_graphs),
            Readout::Max => tape.segment_max(x, batch_vec, num_graphs),
            Readout::MeanMax => {
                let mean = tape.segment_mean(x, batch_vec.clone(), num_graphs);
                let max = tape.segment_max(x, batch_vec, num_graphs);
                tape.concat_cols(&[mean, max])
            }
        }
    }

    /// Convenience: apply over a [`GraphBatch`]'s assignment.
    pub fn apply_batch(self, tape: &mut Tape, x: NodeId, batch: &GraphBatch) -> NodeId {
        self.apply(tape, x, batch.batch.clone(), batch.num_graphs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    #[test]
    fn readouts_match_hand_computation() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1., 2., 3., 4., 10., 20.], [3, 2]));
        let seg = Rc::new(vec![0usize, 0, 1]);
        let sum = Readout::Sum.apply(&mut tape, x, seg.clone(), 2);
        assert_eq!(tape.value(sum).data(), &[4., 6., 10., 20.]);
        let mean = Readout::Mean.apply(&mut tape, x, seg.clone(), 2);
        assert_eq!(tape.value(mean).data(), &[2., 3., 10., 20.]);
        let max = Readout::Max.apply(&mut tape, x, seg.clone(), 2);
        assert_eq!(tape.value(max).data(), &[3., 4., 10., 20.]);
        let mm = Readout::MeanMax.apply(&mut tape, x, seg, 2);
        assert_eq!(tape.shape(mm).dims(), &[2, 4]);
        assert_eq!(tape.value(mm).row(0), &[2., 3., 3., 4.]);
    }

    #[test]
    fn multipliers() {
        assert_eq!(Readout::Sum.multiplier(), 1);
        assert_eq!(Readout::MeanMax.multiplier(), 2);
    }
}
