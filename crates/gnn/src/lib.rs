//! # ood-gnn-models
//!
//! GNN layers, pooling operators, the eight baseline models of the OOD-GNN
//! paper (GCN, GCN-virtual, GIN, GIN-virtual, FactorGCN, PNA, TopKPool,
//! SAGPool) and a standard ERM trainer, all built on the `ood-tensor`
//! autodiff tape and the `ood-graph` batch layout.
//!
//! The central abstraction is [`encoder::GraphEncoder`]: anything that maps
//! a [`graph::GraphBatch`] to a `[num_graphs, d]` representation node on a
//! tape. Baselines combine an encoder with an MLP head ([`models::GnnModel`]);
//! OOD-GNN (in the `oodgnn-core` crate) reuses the same encoders and adds
//! representation decorrelation.

pub mod encoder;
pub mod layers;
pub mod models;
pub mod pool;
pub mod trainer;

pub use encoder::{GraphEncoder, Readout};
pub use models::{BaselineKind, GnnModel, ModelConfig};
