//! Property-based tests for the dataset generators and metrics.

use ood_datasets::metrics::{accuracy, rmse, roc_auc_binary};
use ood_datasets::molgen::{generate_molecules, MolConfig};
use ood_datasets::social::{generate as gen_social, SocialConfig};
use ood_datasets::triangles::{generate as gen_triangles, TrianglesConfig};
use graph::algo::{is_connected, triangle_count};
use graph::TaskType;
use proptest::prelude::*;
use tensor::Tensor;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn triangles_labels_always_match_structure(seed in 0u64..200) {
        let bench = gen_triangles(&TrianglesConfig::scaled(0.005), seed);
        for g in bench.dataset.graphs() {
            prop_assert_eq!(g.label().class() + 1, triangle_count(g));
        }
        prop_assert!(bench.validate().is_ok());
    }

    #[test]
    fn molecules_always_connected_and_scaffolded(seed in 0u64..200) {
        let cfg = MolConfig { n_graphs: 30, ..Default::default() };
        let (graphs, _) = generate_molecules(&cfg, seed);
        for g in &graphs {
            prop_assert!(g.validate().is_ok());
            prop_assert!(is_connected(g));
            prop_assert!(g.scaffold().is_some());
            prop_assert!(g.num_nodes() >= 4);
        }
    }

    #[test]
    fn social_benchmarks_always_valid(seed in 0u64..100, which in 0usize..4) {
        let cfg = match which {
            0 => SocialConfig::collab35(0.03),
            1 => SocialConfig::proteins25(0.03),
            2 => SocialConfig::dd200(0.03),
            _ => SocialConfig::dd300(0.03),
        };
        let bench = gen_social(&cfg, seed);
        prop_assert!(bench.validate().is_ok());
        let classes = match bench.dataset.task() {
            TaskType::MultiClass { classes } => classes,
            _ => unreachable!(),
        };
        for g in bench.dataset.graphs() {
            prop_assert!(g.label().class() < classes);
            prop_assert!(g.validate().is_ok());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn auc_is_invariant_to_monotone_score_transforms(
        scores in proptest::collection::vec(-3.0f32..3.0, 6..20),
        flips in proptest::collection::vec(proptest::bool::ANY, 6..20),
    ) {
        let n = scores.len().min(flips.len());
        let scores = &scores[..n];
        let labels: Vec<f32> = flips[..n].iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let a1 = roc_auc_binary(scores, &labels);
        let transformed: Vec<f32> = scores.iter().map(|&s| (2.0 * s).tanh() * 5.0 + 1.0).collect();
        let a2 = roc_auc_binary(&transformed, &labels);
        match (a1, a2) {
            (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}"),
            (None, None) => {}
            other => prop_assert!(false, "mismatch {other:?}"),
        }
    }

    #[test]
    fn auc_flipping_scores_complements(
        scores in proptest::collection::vec(-3.0f32..3.0, 6..20),
    ) {
        // Half positives half negatives by rank parity to guarantee both classes.
        let labels: Vec<f32> = (0..scores.len()).map(|i| (i % 2) as f32).collect();
        let a = roc_auc_binary(&scores, &labels).unwrap();
        let neg: Vec<f32> = scores.iter().map(|s| -s).collect();
        let b = roc_auc_binary(&neg, &labels).unwrap();
        prop_assert!((a + b - 1.0).abs() < 1e-4);
    }

    #[test]
    fn accuracy_bounds(preds in proptest::collection::vec(-1.0f32..1.0, 12)) {
        let logits = Tensor::from_vec(preds, [4, 3]);
        let targets = vec![0usize, 1, 2, 0];
        let a = accuracy(&logits, &targets);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn rmse_triangle_inequality_with_zero(
        p in proptest::collection::vec(-2.0f32..2.0, 8),
        t in proptest::collection::vec(-2.0f32..2.0, 8),
    ) {
        let pt = Tensor::from_vec(p, [8, 1]);
        let tt = Tensor::from_vec(t, [8, 1]);
        let zero = Tensor::zeros([8, 1]);
        let d = rmse(&pt, &tt);
        prop_assert!(d >= 0.0);
        // rmse(p,t) ≤ rmse(p,0) + rmse(0,t)  (norm triangle inequality)
        prop_assert!(d <= rmse(&pt, &zero) + rmse(&zero, &tt) + 1e-4);
    }
}
