//! Randomized tests for the dataset generators and metrics, looping over a
//! fixed fan of seeds through the in-tree [`Rng`].

use graph::algo::{is_connected, triangle_count};
use graph::TaskType;
use ood_datasets::metrics::{accuracy, rmse, roc_auc_binary};
use ood_datasets::molgen::{generate_molecules, MolConfig};
use ood_datasets::social::{generate as gen_social, SocialConfig};
use ood_datasets::triangles::{generate as gen_triangles, TrianglesConfig};
use tensor::rng::Rng;
use tensor::Tensor;

#[test]
fn triangles_labels_always_match_structure() {
    for seed in 0..12 {
        let bench = gen_triangles(&TrianglesConfig::scaled(0.005), seed);
        for g in bench.dataset.graphs() {
            assert_eq!(g.label().class() + 1, triangle_count(g), "seed {seed}");
        }
        assert!(bench.validate().is_ok(), "seed {seed}");
    }
}

#[test]
fn molecules_always_connected_and_scaffolded() {
    for seed in 0..12 {
        let cfg = MolConfig {
            n_graphs: 30,
            ..Default::default()
        };
        let (graphs, _) = generate_molecules(&cfg, seed);
        for g in &graphs {
            assert!(g.validate().is_ok(), "seed {seed}");
            assert!(is_connected(g), "seed {seed}");
            assert!(g.scaffold().is_some(), "seed {seed}");
            assert!(g.num_nodes() >= 4, "seed {seed}");
        }
    }
}

#[test]
fn social_benchmarks_always_valid() {
    for seed in 0..8 {
        let cfg = match seed % 4 {
            0 => SocialConfig::collab35(0.03),
            1 => SocialConfig::proteins25(0.03),
            2 => SocialConfig::dd200(0.03),
            _ => SocialConfig::dd300(0.03),
        };
        let bench = gen_social(&cfg, seed);
        assert!(bench.validate().is_ok(), "seed {seed}");
        let classes = match bench.dataset.task() {
            TaskType::MultiClass { classes } => classes,
            _ => unreachable!(),
        };
        for g in bench.dataset.graphs() {
            assert!(g.label().class() < classes, "seed {seed}");
            assert!(g.validate().is_ok(), "seed {seed}");
        }
    }
}

#[test]
fn auc_is_invariant_to_monotone_score_transforms() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let n = rng.range_inclusive(6, 19);
        let scores: Vec<f32> = (0..n).map(|_| rng.uniform(-3.0, 3.0)).collect();
        let labels: Vec<f32> = (0..n)
            .map(|_| if rng.bernoulli(0.5) { 1.0 } else { 0.0 })
            .collect();
        let a1 = roc_auc_binary(&scores, &labels);
        let transformed: Vec<f32> = scores
            .iter()
            .map(|&s| (2.0 * s).tanh() * 5.0 + 1.0)
            .collect();
        let a2 = roc_auc_binary(&transformed, &labels);
        match (a1, a2) {
            (Some(x), Some(y)) => assert!((x - y).abs() < 1e-4, "seed {seed}: {x} vs {y}"),
            (None, None) => {}
            other => panic!("seed {seed}: mismatch {other:?}"),
        }
    }
}

#[test]
fn auc_flipping_scores_complements() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let n = rng.range_inclusive(6, 19);
        let scores: Vec<f32> = (0..n).map(|_| rng.uniform(-3.0, 3.0)).collect();
        // Half positives half negatives by rank parity to guarantee both classes.
        let labels: Vec<f32> = (0..n).map(|i| (i % 2) as f32).collect();
        let a = roc_auc_binary(&scores, &labels).unwrap();
        let neg: Vec<f32> = scores.iter().map(|s| -s).collect();
        let b = roc_auc_binary(&neg, &labels).unwrap();
        assert!((a + b - 1.0).abs() < 1e-4, "seed {seed}: {a} + {b}");
    }
}

#[test]
fn accuracy_bounds() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let preds: Vec<f32> = (0..12).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let logits = Tensor::from_vec(preds, [4, 3]);
        let targets = vec![0usize, 1, 2, 0];
        let a = accuracy(&logits, &targets);
        assert!((0.0..=1.0).contains(&a), "seed {seed}: {a}");
    }
}

#[test]
fn rmse_triangle_inequality_with_zero() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let p: Vec<f32> = (0..8).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let t: Vec<f32> = (0..8).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let pt = Tensor::from_vec(p, [8, 1]);
        let tt = Tensor::from_vec(t, [8, 1]);
        let zero = Tensor::zeros([8, 1]);
        let d = rmse(&pt, &tt);
        assert!(d >= 0.0, "seed {seed}");
        // rmse(p,t) ≤ rmse(p,0) + rmse(0,t)  (norm triangle inequality)
        assert!(
            d <= rmse(&pt, &zero) + rmse(&zero, &tt) + 1e-4,
            "seed {seed}"
        );
    }
}
