//! Dataset statistics reporting (the paper's Table 1).

use crate::OodBenchmark;
use graph::TaskType;

/// One row of the Table 1 statistics.
#[derive(Clone, Debug)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of graphs.
    pub num_graphs: usize,
    /// Average node count.
    pub avg_nodes: f32,
    /// Average (undirected) edge count.
    pub avg_edges: f32,
    /// Output dimensionality.
    pub num_tasks: usize,
    /// Task type label as in the paper's table.
    pub task_type: &'static str,
    /// Split method label.
    pub split_method: &'static str,
    /// Metric label.
    pub metric: &'static str,
    /// Train/val/test sizes.
    pub split_sizes: (usize, usize, usize),
}

/// Compute statistics for a benchmark instance.
pub fn compute(bench: &OodBenchmark, split_method: &'static str) -> DatasetStats {
    let (num_graphs, avg_nodes, avg_edges) = bench.dataset.stats();
    let task = bench.dataset.task();
    let (task_type, metric) = match task {
        TaskType::MultiClass { classes } => {
            if classes == 2 {
                ("Binary class.", "Accuracy")
            } else {
                ("Multi-class.", "Accuracy")
            }
        }
        TaskType::BinaryClassification { .. } => ("Binary class.", "ROC-AUC"),
        TaskType::Regression { .. } => ("Regression", "RMSE"),
    };
    DatasetStats {
        name: bench.dataset.name().to_string(),
        num_graphs,
        avg_nodes,
        avg_edges,
        num_tasks: task.output_dim(),
        task_type,
        split_method,
        metric,
        split_sizes: (
            bench.split.train.len(),
            bench.split.val.len(),
            bench.split.test.len(),
        ),
    }
}

/// Render rows as a markdown table matching Table 1's columns.
pub fn to_markdown(rows: &[DatasetStats]) -> String {
    let mut out = String::from(
        "| Name | #Graphs | Avg #Nodes | Avg #Edges | #Tasks | Task Type | Split | Metric | Train/Val/Test |\n|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {} | {} | {} | {} | {}/{}/{} |\n",
            r.name,
            r.num_graphs,
            r.avg_nodes,
            r.avg_edges,
            r.num_tasks,
            r.task_type,
            r.split_method,
            r.metric,
            r.split_sizes.0,
            r.split_sizes.1,
            r.split_sizes.2,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangles::{generate, TrianglesConfig};

    #[test]
    fn stats_for_triangles() {
        let bench = generate(&TrianglesConfig::scaled(0.01), 1);
        let s = compute(&bench, "Size");
        assert_eq!(s.name, "TRIANGLES");
        assert_eq!(s.metric, "Accuracy");
        assert_eq!(s.task_type, "Multi-class.");
        assert_eq!(s.split_method, "Size");
        assert!(s.avg_nodes > 4.0);
        assert_eq!(
            s.num_graphs,
            s.split_sizes.0 + s.split_sizes.1 + s.split_sizes.2
        );
    }

    #[test]
    fn markdown_renders_all_rows() {
        let bench = generate(&TrianglesConfig::scaled(0.01), 1);
        let rows = vec![compute(&bench, "Size")];
        let md = to_markdown(&rows);
        assert!(md.contains("TRIANGLES"));
        assert_eq!(md.lines().count(), 3);
    }
}
