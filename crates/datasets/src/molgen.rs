//! Synthetic molecule engine with scaffolds, functional groups and a
//! scaffold↔label spurious correlation — the substrate for the nine
//! OGB-like datasets (paper §4.1.2, Table 4, Figure 1c).
//!
//! ## Generative model
//!
//! A molecule is a **scaffold** (a ring system drawn from a library of 20
//! templates) decorated with 1–4 **functional-group motifs** attached at
//! ring positions, plus optional aliphatic chain padding.
//!
//! * The **true labels** depend only on the motif counts (a fixed sparse
//!   linear mechanism per task, thresholded for classification) — motifs
//!   are the *relevant, invariant* representation, like the paper's
//!   "predictive functional blocks of molecules".
//! * The **scaffold** never enters the label mechanism, but during
//!   generation the motif distribution is *tilted by the scaffold's group*
//!   for the frequent (training) scaffolds: scaffold identity becomes
//!   spuriously predictive of the label **within the training scaffolds
//!   only**. Held-out scaffolds sample motifs untilted, so a model reading
//!   scaffold features fails under the scaffold split — exactly the OOD
//!   failure mode of Figure 1c.
//! * Scaffold frequencies follow a Zipf law, so the standard
//!   frequency-ordered [`graph::split::scaffold_split`] naturally places the
//!   frequent (biased) scaffolds in train and the rare (untilted) ones in
//!   test.
//!
//! Node features: one-hot atom type (6) + in-ring flag + degree/4 → 8 dims.

use crate::error::DatasetError;
use graph::{Graph, Label, TaskType};
use tensor::rng::Rng;
use tensor::Tensor;

/// Number of atom types (C, N, O, S, halogen, P).
pub const NUM_ATOM_TYPES: usize = 6;
/// Node feature dimension.
pub const FEATURE_DIM: usize = NUM_ATOM_TYPES + 2;
/// Number of functional-group motifs.
pub const NUM_MOTIFS: usize = 8;
/// Number of scaffold templates in the library.
pub const NUM_SCAFFOLDS: usize = 20;

/// Atom type codes.
mod atom {
    pub const C: usize = 0;
    pub const N: usize = 1;
    pub const O: usize = 2;
    pub const S: usize = 3;
    pub const X: usize = 4; // halogen
    #[allow(dead_code)]
    pub const P: usize = 5;
}

/// A scaffold template: atom types, undirected ring edges, and which atoms
/// accept substituents.
struct ScaffoldTemplate {
    atoms: Vec<usize>,
    edges: Vec<(usize, usize)>,
    attach: Vec<usize>,
}

/// An n-cycle of the given atom types.
fn ring(types: &[usize]) -> ScaffoldTemplate {
    let n = types.len();
    let edges = (0..n).map(|i| (i, (i + 1) % n)).collect();
    ScaffoldTemplate {
        atoms: types.to_vec(),
        edges,
        attach: (0..n).collect(),
    }
}

/// A simple chain of the given atom types.
fn chain(types: &[usize]) -> ScaffoldTemplate {
    let n = types.len();
    let edges = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    ScaffoldTemplate {
        atoms: types.to_vec(),
        edges,
        attach: (0..n).collect(),
    }
}

/// Fuse a second ring of size `m` onto atoms (0, 1) of a base ring.
fn fused(base: &[usize], second: &[usize]) -> ScaffoldTemplate {
    let mut t = ring(base);
    let n = t.atoms.len();
    let m = second.len();
    // New atoms for the second ring except the two shared ones.
    for &a in &second[..m - 2] {
        t.atoms.push(a);
    }
    // Ring: 0 - n - n+1 - ... - n+m-3 - 1 - 0 (sharing edge 0-1).
    let mut prev = 0usize;
    for k in 0..m - 2 {
        t.edges.push((prev, n + k));
        prev = n + k;
    }
    t.edges.push((prev, 1));
    t.attach = (0..t.atoms.len()).collect();
    t
}

/// Join two rings by a single bond (biphenyl-like).
fn joined(a: &[usize], b: &[usize]) -> ScaffoldTemplate {
    let mut t = ring(a);
    let n = t.atoms.len();
    let second = ring(b);
    for &at in &second.atoms {
        t.atoms.push(at);
    }
    for &(u, v) in &second.edges {
        t.edges.push((n + u, n + v));
    }
    t.edges.push((0, n));
    t.attach = (0..t.atoms.len()).collect();
    t
}

/// Two rings sharing one atom (spiro).
fn spiro(a: &[usize], b: &[usize]) -> ScaffoldTemplate {
    let mut t = ring(a);
    let n = t.atoms.len();
    let m = b.len();
    for &at in &b[..m - 1] {
        t.atoms.push(at);
    }
    // Second ring through shared atom 0: 0 - n - n+1 - ... - n+m-2 - 0.
    let mut prev = 0usize;
    for k in 0..m - 1 {
        t.edges.push((prev, n + k));
        prev = n + k;
    }
    t.edges.push((prev, 0));
    t.attach = (0..t.atoms.len()).collect();
    t
}

/// The scaffold library. Index = scaffold id.
fn scaffold_library() -> Vec<ScaffoldTemplate> {
    use atom::*;
    let c6 = [C; 6];
    let c5 = [C; 5];
    vec![
        ring(&c6),                    // 0 benzene
        ring(&c5),                    // 1 cyclopentane
        fused(&c6, &c6),              // 2 naphthalene
        fused(&c6, &[C, C, C, N, C]), // 3 indole-like
        joined(&c6, &c6),             // 4 biphenyl
        ring(&[N, C, C, C, C, C]),    // 5 pyridine
        ring(&[O, C, C, C, C]),       // 6 furan
        chain(&[C, C, C, C]),         // 7 butane scaffold
        ring(&[C; 8]),                // 8 macrocycle-8
        {
            // 9: benzene with 2-carbon tail
            let mut t = ring(&c6);
            t.atoms.push(C);
            t.atoms.push(C);
            t.edges.push((0, 6));
            t.edges.push((6, 7));
            t.attach = (0..8).collect();
            t
        },
        spiro(&c6, &c5), // 10 spiro[5.4]
        {
            // 11: anthracene-like (three fused 6-rings)
            let mut t = fused(&c6, &c6);
            let n = t.atoms.len();
            for _ in 0..4 {
                t.atoms.push(C);
            }
            t.edges.push((2, n));
            t.edges.push((n, n + 1));
            t.edges.push((n + 1, n + 2));
            t.edges.push((n + 2, n + 3));
            t.edges.push((n + 3, 3));
            t.attach = (0..t.atoms.len()).collect();
            t
        },
        ring(&[N, C, C, N, C, C]), // 12 piperazine
        ring(&[S, C, C, C, C]),    // 13 thiophene
        {
            // 14: bicyclo bridge
            let mut t = ring(&c6);
            t.atoms.push(C);
            t.edges.push((0, 6));
            t.edges.push((6, 3));
            t.attach = (0..7).collect();
            t
        },
        ring(&[N, C, N, C, C, C]),          // 15 pyrimidine
        ring(&[O, C, C, N, C, C]),          // 16 morpholine
        fused(&c5, &[C, C, C, C, C, C, C]), // 17 azulene-like 5-7
        chain(&[C, C, C, C, C, C]),         // 18 hexane scaffold
        joined(&c5, &c5),                   // 19 bi(cyclopentyl)
    ]
}

/// A functional-group motif: atoms (first is the attachment root) and tree
/// edges rooted at 0.
struct Motif {
    atoms: Vec<usize>,
    edges: Vec<(usize, usize)>,
}

/// The motif library. Index = motif id.
fn motif_library() -> Vec<Motif> {
    use atom::*;
    vec![
        Motif {
            atoms: vec![C],
            edges: vec![],
        }, // 0 methyl
        Motif {
            atoms: vec![O],
            edges: vec![],
        }, // 1 hydroxyl
        Motif {
            atoms: vec![N],
            edges: vec![],
        }, // 2 amine
        Motif {
            atoms: vec![C, O, O],
            edges: vec![(0, 1), (0, 2)],
        }, // 3 carboxyl
        Motif {
            atoms: vec![N, O, O],
            edges: vec![(0, 1), (0, 2)],
        }, // 4 nitro
        Motif {
            atoms: vec![X],
            edges: vec![],
        }, // 5 halogen
        Motif {
            atoms: vec![S],
            edges: vec![],
        }, // 6 thiol
        Motif {
            atoms: vec![C, O, N],
            edges: vec![(0, 1), (0, 2)],
        }, // 7 amide
    ]
}

/// Per-task label mechanism: a sparse ±1 weight vector over motif counts.
#[derive(Clone, Debug)]
pub struct LabelMechanism {
    /// `weights[task][motif]` in {−1, 0, +1}.
    pub weights: Vec<Vec<f32>>,
    /// Classification threshold noise / regression noise std.
    pub noise_std: f32,
}

impl LabelMechanism {
    /// Draw a mechanism with `tasks` tasks; each task has 2–4 non-zero ±1
    /// motif weights.
    pub fn sample(tasks: usize, noise_std: f32, rng: &mut Rng) -> Self {
        let mut weights = Vec::with_capacity(tasks);
        for _ in 0..tasks {
            let mut w = vec![0f32; NUM_MOTIFS];
            let k = rng.range_inclusive(2, 4);
            for &m in rng.choose_distinct(NUM_MOTIFS, k).iter() {
                w[m] = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
            }
            weights.push(w);
        }
        LabelMechanism { weights, noise_std }
    }

    /// Raw score of a task given motif counts.
    pub fn score(&self, task: usize, counts: &[usize]) -> f32 {
        self.weights[task]
            .iter()
            .zip(counts.iter())
            .map(|(w, &c)| w * c as f32)
            .sum()
    }
}

/// Configuration for one molecular dataset draw.
#[derive(Clone, Debug)]
pub struct MolConfig {
    /// Number of molecules.
    pub n_graphs: usize,
    /// Task layout.
    pub task: TaskType,
    /// Fraction of labels observed (OGB-style missing labels); 1.0 = full.
    pub label_density: f32,
    /// Scaffold↔label correlation strength on training scaffolds (0.0
    /// disables; the motif tilt exponent).
    pub bias: f32,
    /// How many of the most frequent scaffolds carry the bias (these are
    /// the ones scaffold_split places in train).
    pub n_biased_scaffolds: usize,
    /// Extra aliphatic chain padding atoms (0..=this) to tune graph size.
    pub extra_chain: usize,
    /// Motif attachments per molecule (min, max).
    pub motifs_per_mol: (usize, usize),
}

impl Default for MolConfig {
    fn default() -> Self {
        MolConfig {
            n_graphs: 1000,
            task: TaskType::BinaryClassification { tasks: 1 },
            label_density: 1.0,
            bias: 1.5,
            n_biased_scaffolds: 12,
            extra_chain: 6,
            motifs_per_mol: (1, 4),
        }
    }
}

/// Zipf-like scaffold sampling: P(s) ∝ 1/(s+1).
fn sample_scaffold(rng: &mut Rng) -> usize {
    let weights: Vec<f32> = (0..NUM_SCAFFOLDS).map(|s| 1.0 / (s as f32 + 1.0)).collect();
    rng.choose_weighted(&weights)
}

/// Sample motif counts, tilted toward `dir`-signed task-0 weights when
/// `tilt > 0` (the spurious scaffold→motif coupling).
fn sample_motifs(
    mech: &LabelMechanism,
    n_motifs: usize,
    tilt: f32,
    dir: f32,
    rng: &mut Rng,
) -> Vec<usize> {
    let mut counts = vec![0usize; NUM_MOTIFS];
    let probs: Vec<f32> = (0..NUM_MOTIFS)
        .map(|m| (tilt * dir * mech.weights[0][m]).exp())
        .collect();
    for _ in 0..n_motifs {
        counts[rng.choose_weighted(&probs)] += 1;
    }
    counts
}

/// Assemble the molecular graph for a scaffold + motif counts (+ padding).
fn assemble(
    scaffold_id: usize,
    counts: &[usize],
    extra_chain: usize,
    label: Label,
    rng: &mut Rng,
) -> Graph {
    let lib = scaffold_library();
    let motifs = motif_library();
    let t = &lib[scaffold_id];
    let mut atoms = t.atoms.clone();
    let mut edges = t.edges.clone();
    let in_ring_until = t.atoms.len();
    // Attach motifs at random attachment points.
    for (m, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            let site = t.attach[rng.below(t.attach.len())];
            let base = atoms.len();
            for &a in &motifs[m].atoms {
                atoms.push(a);
            }
            edges.push((site, base));
            for &(u, v) in &motifs[m].edges {
                edges.push((base + u, base + v));
            }
        }
    }
    // Chain padding off a random site.
    let pad = if extra_chain > 0 {
        rng.below(extra_chain + 1)
    } else {
        0
    };
    if pad > 0 {
        let mut prev = t.attach[rng.below(t.attach.len())];
        for _ in 0..pad {
            let id = atoms.len();
            atoms.push(atom::C);
            edges.push((prev, id));
            prev = id;
        }
    }
    // Build features.
    let n = atoms.len();
    let mut deg = vec![0usize; n];
    for &(u, v) in &edges {
        deg[u] += 1;
        deg[v] += 1;
    }
    let mut feats = Tensor::zeros([n, FEATURE_DIM]);
    for i in 0..n {
        *feats.at_mut(i, atoms[i]) = 1.0;
        *feats.at_mut(i, NUM_ATOM_TYPES) = if i < in_ring_until { 1.0 } else { 0.0 };
        *feats.at_mut(i, NUM_ATOM_TYPES + 1) = deg[i] as f32 / 4.0;
    }
    let mut g = Graph::new(n, feats, label);
    for &(u, v) in &edges {
        g.add_undirected_edge(u, v);
    }
    g.set_scaffold(scaffold_id as u32);
    g
}

/// Generate a molecular dataset, validating the configuration first.
///
/// # Errors
/// [`DatasetError::UnsupportedTask`] for multi-class task layouts
/// (molecular property prediction is multi-task binary or regression);
/// [`DatasetError::InvalidConfig`] for empty datasets, a label density
/// outside `(0, 1]`, a negative bias, or an inverted motif range.
pub fn try_generate_molecules(
    config: &MolConfig,
    seed: u64,
) -> Result<(Vec<Graph>, LabelMechanism), DatasetError> {
    if let TaskType::MultiClass { .. } = config.task {
        return Err(DatasetError::UnsupportedTask(
            "molecules are multi-task binary or regression, not multi-class".into(),
        ));
    }
    if config.n_graphs == 0 {
        return Err(DatasetError::InvalidConfig("n_graphs must be > 0".into()));
    }
    if !(config.label_density > 0.0 && config.label_density <= 1.0) {
        return Err(DatasetError::InvalidConfig(format!(
            "label_density {} must lie in (0, 1]",
            config.label_density
        )));
    }
    if !config.bias.is_finite() || config.bias < 0.0 {
        return Err(DatasetError::InvalidConfig(format!(
            "bias {} must be finite and ≥ 0",
            config.bias
        )));
    }
    if config.motifs_per_mol.0 > config.motifs_per_mol.1 {
        return Err(DatasetError::InvalidConfig(format!(
            "motifs_per_mol range ({}, {}) is inverted",
            config.motifs_per_mol.0, config.motifs_per_mol.1
        )));
    }
    Ok(generate_molecules(config, seed))
}

/// Generate a molecular dataset (graphs only — pair with
/// [`graph::split::scaffold_split`] for the OOD split, or use
/// [`crate::ogb::generate`] which does both). Prefer
/// [`try_generate_molecules`] for untrusted configurations: a multi-class
/// task layout falls back to single-task binary labels here instead of
/// producing an error.
pub fn generate_molecules(config: &MolConfig, seed: u64) -> (Vec<Graph>, LabelMechanism) {
    let mut rng = Rng::seed_from(seed);
    let tasks = config.task.output_dim();
    let mech = LabelMechanism::sample(tasks, 0.25, &mut rng);
    let mut graphs = Vec::with_capacity(config.n_graphs);
    for _ in 0..config.n_graphs {
        let scaffold = sample_scaffold(&mut rng);
        let biased = scaffold < config.n_biased_scaffolds;
        let (tilt, dir) = if biased && config.bias > 0.0 {
            // Scaffold group (parity) decides the tilt direction.
            (
                config.bias,
                if scaffold.is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                },
            )
        } else {
            (0.0, 1.0)
        };
        let n_motifs = rng.range_inclusive(config.motifs_per_mol.0, config.motifs_per_mol.1);
        let counts = sample_motifs(&mech, n_motifs, tilt, dir, &mut rng);
        let label = match config.task {
            TaskType::Regression { targets } => {
                let v = (0..targets)
                    .map(|t| mech.score(t, &counts) + rng.normal() * mech.noise_std)
                    .collect();
                Label::Regression(v)
            }
            // Binary layout. Multi-class is not meaningful for molecules —
            // `try_generate_molecules` rejects it with a typed error; here
            // it degrades to one binary task per class.
            _ => {
                let mut values = Vec::with_capacity(tasks);
                let mut mask = Vec::with_capacity(tasks);
                for t in 0..tasks {
                    let s = mech.score(t, &counts) + rng.normal() * mech.noise_std;
                    values.push(if s > 0.0 { 1.0 } else { 0.0 });
                    mask.push(if rng.bernoulli(config.label_density) {
                        1.0
                    } else {
                        0.0
                    });
                }
                Label::MultiBinary { values, mask }
            }
        };
        graphs.push(assemble(
            scaffold,
            &counts,
            config.extra_chain,
            label,
            &mut rng,
        ));
    }
    (graphs, mech)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::algo::is_connected;

    #[test]
    fn multi_class_task_is_a_typed_error() {
        let cfg = MolConfig {
            task: TaskType::MultiClass { classes: 3 },
            ..Default::default()
        };
        assert!(matches!(
            try_generate_molecules(&cfg, 1),
            Err(DatasetError::UnsupportedTask(_))
        ));
    }

    #[test]
    fn try_generate_validates_config() {
        let cfg = MolConfig {
            label_density: 0.0,
            ..Default::default()
        };
        assert!(matches!(
            try_generate_molecules(&cfg, 1),
            Err(DatasetError::InvalidConfig(_))
        ));
        let cfg = MolConfig {
            n_graphs: 50,
            ..Default::default()
        };
        let (graphs, _) = try_generate_molecules(&cfg, 1).unwrap();
        assert_eq!(graphs.len(), 50);
    }

    #[test]
    fn scaffold_library_is_valid() {
        let lib = scaffold_library();
        assert_eq!(lib.len(), NUM_SCAFFOLDS);
        for (i, t) in lib.iter().enumerate() {
            assert!(!t.atoms.is_empty(), "scaffold {i} empty");
            for &(u, v) in &t.edges {
                assert!(
                    u < t.atoms.len() && v < t.atoms.len(),
                    "scaffold {i} bad edge"
                );
            }
            for &a in &t.attach {
                assert!(a < t.atoms.len(), "scaffold {i} bad attach point");
            }
        }
    }

    #[test]
    fn motif_library_is_valid() {
        let lib = motif_library();
        assert_eq!(lib.len(), NUM_MOTIFS);
        for m in &lib {
            for &(u, v) in &m.edges {
                assert!(u < m.atoms.len() && v < m.atoms.len());
            }
        }
    }

    #[test]
    fn molecules_are_connected_and_valid() {
        let cfg = MolConfig {
            n_graphs: 60,
            ..Default::default()
        };
        let (graphs, _) = generate_molecules(&cfg, 1);
        for g in &graphs {
            g.validate().unwrap();
            assert!(is_connected(g), "molecule must be connected");
            assert!(g.scaffold().is_some());
        }
    }

    #[test]
    fn label_mechanism_sparse_and_signed() {
        let mut rng = Rng::seed_from(2);
        let mech = LabelMechanism::sample(5, 0.1, &mut rng);
        for w in &mech.weights {
            let nz = w.iter().filter(|&&x| x != 0.0).count();
            assert!((2..=4).contains(&nz));
            assert!(w.iter().all(|&x| x == 0.0 || x == 1.0 || x == -1.0));
        }
    }

    #[test]
    fn biased_scaffolds_correlate_with_labels() {
        // With strong tilt, even-group scaffolds should be mostly positive
        // on task 0 and odd-group mostly negative.
        let cfg = MolConfig {
            n_graphs: 1500,
            bias: 2.5,
            ..Default::default()
        };
        let (graphs, _) = generate_molecules(&cfg, 3);
        let mut pos = [0usize; 2];
        let mut tot = [0usize; 2];
        for g in &graphs {
            let s = g.scaffold().unwrap() as usize;
            if s >= cfg.n_biased_scaffolds {
                continue;
            }
            if let Label::MultiBinary { values, .. } = g.label() {
                tot[s % 2] += 1;
                if values[0] > 0.5 {
                    pos[s % 2] += 1;
                }
            }
        }
        let p0 = pos[0] as f32 / tot[0].max(1) as f32;
        let p1 = pos[1] as f32 / tot[1].max(1) as f32;
        assert!(p0 - p1 > 0.3, "bias too weak: {p0} vs {p1}");
    }

    #[test]
    fn unbiased_scaffolds_do_not_correlate() {
        let cfg = MolConfig {
            n_graphs: 4000,
            bias: 2.5,
            n_biased_scaffolds: 0,
            ..Default::default()
        };
        let (graphs, _) = generate_molecules(&cfg, 4);
        let mut pos = [0usize; 2];
        let mut tot = [0usize; 2];
        for g in &graphs {
            let s = g.scaffold().unwrap() as usize;
            if let Label::MultiBinary { values, .. } = g.label() {
                tot[s % 2] += 1;
                if values[0] > 0.5 {
                    pos[s % 2] += 1;
                }
            }
        }
        let p0 = pos[0] as f32 / tot[0].max(1) as f32;
        let p1 = pos[1] as f32 / tot[1].max(1) as f32;
        assert!(
            (p0 - p1).abs() < 0.12,
            "unbiased groups should match: {p0} vs {p1}"
        );
    }

    #[test]
    fn zipf_scaffold_distribution() {
        let mut rng = Rng::seed_from(5);
        let mut counts = [0usize; NUM_SCAFFOLDS];
        for _ in 0..20_000 {
            counts[sample_scaffold(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[5] > counts[19]);
    }

    #[test]
    fn regression_labels_track_motif_scores() {
        let cfg = MolConfig {
            n_graphs: 100,
            task: TaskType::Regression { targets: 1 },
            bias: 0.0,
            ..Default::default()
        };
        let (graphs, _) = generate_molecules(&cfg, 6);
        let values: Vec<f32> = graphs
            .iter()
            .map(|g| match g.label() {
                Label::Regression(v) => v[0],
                _ => panic!(),
            })
            .collect();
        let (mean, std) = crate::metrics::mean_std(&values);
        assert!(std > 0.3, "labels must vary: mean {mean} std {std}");
    }

    #[test]
    fn label_density_masks_labels() {
        let cfg = MolConfig {
            n_graphs: 300,
            label_density: 0.5,
            ..Default::default()
        };
        let (graphs, _) = generate_molecules(&cfg, 7);
        let mut observed = 0usize;
        let mut total = 0usize;
        for g in &graphs {
            if let Label::MultiBinary { mask, .. } = g.label() {
                observed += mask.iter().filter(|&&m| m > 0.5).count();
                total += mask.len();
            }
        }
        let frac = observed as f32 / total as f32;
        assert!((frac - 0.5).abs() < 0.08, "observed fraction {frac}");
    }
}
