//! Evaluation metrics: accuracy, (multi-task) ROC-AUC, RMSE — the three
//! metrics of the paper's Table 1.

use tensor::Tensor;

/// Classification accuracy from logits `[n, classes]` and class targets.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    assert_eq!(
        logits.nrows(),
        targets.len(),
        "accuracy: row/target mismatch"
    );
    if targets.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds
        .iter()
        .zip(targets.iter())
        .filter(|(p, t)| p == t)
        .count();
    correct as f32 / targets.len() as f32
}

/// Binary ROC-AUC from scores and {0,1} labels via the rank statistic
/// (Mann–Whitney U), with midrank tie handling. Returns `None` when only
/// one class is present.
pub fn roc_auc_binary(scores: &[f32], labels: &[f32]) -> Option<f32> {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return None;
    }
    // Sort indices by score; assign midranks to ties.
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = midrank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = labels
        .iter()
        .zip(ranks.iter())
        .filter(|(&y, _)| y > 0.5)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos as f64 * (n_pos as f64 + 1.0)) / 2.0;
    Some((u / (n_pos as f64 * n_neg as f64)) as f32)
}

/// Multi-task ROC-AUC: per-task AUC over observed entries (`mask` = 1),
/// averaged over tasks where both classes occur — OGB's evaluator protocol.
/// Returns 0.5 if no task is scoreable.
pub fn roc_auc_multitask(scores: &Tensor, labels: &Tensor, mask: &Tensor) -> f32 {
    let (n, t) = scores.shape().as_matrix();
    assert_eq!(labels.shape().dims(), &[n, t]);
    assert_eq!(mask.shape().dims(), &[n, t]);
    let mut aucs = Vec::new();
    for task in 0..t {
        let mut s = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            if mask.at(i, task) > 0.5 {
                s.push(scores.at(i, task));
                y.push(labels.at(i, task));
            }
        }
        if let Some(a) = roc_auc_binary(&s, &y) {
            aucs.push(a);
        }
    }
    if aucs.is_empty() {
        0.5
    } else {
        aucs.iter().sum::<f32>() / aucs.len() as f32
    }
}

/// Root mean squared error over all prediction/target entries.
pub fn rmse(preds: &Tensor, targets: &Tensor) -> f32 {
    assert_eq!(preds.shape(), targets.shape(), "rmse shape mismatch");
    let n = preds.numel();
    if n == 0 {
        return 0.0;
    }
    let sq: f32 = preds
        .data()
        .iter()
        .zip(targets.data().iter())
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    (sq / n as f32).sqrt()
}

/// Binary F1 score from scores (> `threshold` = positive) and {0,1} labels.
pub fn f1_binary(scores: &[f32], labels: &[f32], threshold: f32) -> f32 {
    assert_eq!(scores.len(), labels.len());
    let mut tp = 0f32;
    let mut fp = 0f32;
    let mut fngt = 0f32;
    for (&s, &y) in scores.iter().zip(labels.iter()) {
        let pred = s > threshold;
        let pos = y > 0.5;
        match (pred, pos) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fngt += 1.0,
            (false, false) => {}
        }
    }
    if tp == 0.0 {
        return 0.0;
    }
    let precision = tp / (tp + fp);
    let recall = tp / (tp + fngt);
    2.0 * precision * recall / (precision + recall)
}

/// Average precision (area under the precision–recall curve, step
/// interpolation) from scores and {0,1} labels. Returns `None` when no
/// positives exist.
pub fn average_precision(scores: &[f32], labels: &[f32]) -> Option<f32> {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&y| y > 0.5).count();
    if n_pos == 0 {
        return None;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut tp = 0f64;
    let mut seen = 0f64;
    let mut ap = 0f64;
    for &i in &idx {
        seen += 1.0;
        if labels[i] > 0.5 {
            tp += 1.0;
            ap += tp / seen;
        }
    }
    Some((ap / n_pos as f64) as f32)
}

/// Mean and sample standard deviation of repeated runs.
pub fn mean_std(values: &[f32]) -> (f32, f32) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f32;
    let mean = values.iter().sum::<f32>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / (n - 1.0);
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        let logits = Tensor::from_vec(vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4], [3, 2]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let s = [0.1, 0.2, 0.8, 0.9];
        let y = [0.0, 0.0, 1.0, 1.0];
        assert!((roc_auc_binary(&s, &y).unwrap() - 1.0).abs() < 1e-6);
        let y_inv = [1.0, 1.0, 0.0, 0.0];
        assert!(roc_auc_binary(&s, &y_inv).unwrap().abs() < 1e-6);
    }

    #[test]
    fn auc_random_is_half() {
        // Identical scores => AUC 0.5 by midrank.
        let s = [0.5; 10];
        let y = [0., 1., 0., 1., 0., 1., 0., 1., 0., 1.];
        assert!((roc_auc_binary(&s, &y).unwrap() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn auc_single_class_is_none() {
        assert!(roc_auc_binary(&[0.1, 0.9], &[1.0, 1.0]).is_none());
    }

    #[test]
    fn auc_known_partial() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won 3/4 -> 0.75
        let s = [0.8, 0.4, 0.6, 0.2];
        let y = [1.0, 1.0, 0.0, 0.0];
        assert!((roc_auc_binary(&s, &y).unwrap() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn multitask_auc_respects_mask() {
        // Task 0 perfectly ranked; task 1 has an observed wrong pair but is
        // masked out entirely except one class -> skipped.
        let scores = Tensor::from_vec(vec![0.9, 0.1, 0.1, 0.9], [2, 2]);
        let labels = Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.0], [2, 2]);
        let mask = Tensor::from_vec(vec![1.0, 1.0, 1.0, 0.0], [2, 2]);
        let auc = roc_auc_multitask(&scores, &labels, &mask);
        assert!((auc - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multitask_auc_averages_tasks() {
        let scores = Tensor::from_vec(vec![0.9, 0.1, 0.1, 0.9], [2, 2]);
        let labels = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], [2, 2]);
        let mask = Tensor::ones([2, 2]);
        // Task 0: perfect (1.0); task 1: perfect (1.0).
        assert!((roc_auc_multitask(&scores, &labels, &mask) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rmse_known() {
        let p = Tensor::from_vec(vec![1.0, 2.0], [2, 1]);
        let t = Tensor::from_vec(vec![0.0, 4.0], [2, 1]);
        // sqrt((1 + 4)/2)
        assert!((rmse(&p, &t) - (2.5f32).sqrt()).abs() < 1e-6);
        assert_eq!(rmse(&p, &p), 0.0);
    }

    #[test]
    fn f1_known_values() {
        let s = [0.9, 0.8, 0.2, 0.1];
        let y = [1.0, 0.0, 1.0, 0.0];
        // preds at 0.5: [1,1,0,0] -> tp=1, fp=1, fn=1 -> P=0.5, R=0.5, F1=0.5
        assert!((f1_binary(&s, &y, 0.5) - 0.5).abs() < 1e-6);
        // Perfect classifier.
        let y2 = [1.0, 1.0, 0.0, 0.0];
        assert!((f1_binary(&s, &y2, 0.5) - 1.0).abs() < 1e-6);
        // No true positives.
        let y3 = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(f1_binary(&s, &y3, 0.5), 0.0);
    }

    #[test]
    fn average_precision_known_values() {
        // Perfect ranking: AP = 1.
        let s = [0.9, 0.8, 0.2, 0.1];
        let y = [1.0, 1.0, 0.0, 0.0];
        assert!((average_precision(&s, &y).unwrap() - 1.0).abs() < 1e-6);
        // Worst ranking of one positive among 4: precision 1/4 at its hit.
        let y2 = [0.0, 0.0, 0.0, 1.0];
        assert!((average_precision(&s, &y2).unwrap() - 0.25).abs() < 1e-6);
        // No positives -> None.
        assert!(average_precision(&s, &[0.0; 4]).is_none());
    }

    #[test]
    fn mean_std_known() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-6);
        assert!((s - 1.0).abs() < 1e-6);
        let (m1, s1) = mean_std(&[5.0]);
        assert_eq!((m1, s1), (5.0, 0.0));
    }
}
