//! COLLAB-, PROTEINS- and D&D-like generators with **size-based
//! distribution shift** (paper §4.1.2, Table 3).
//!
//! The paper trains on small graphs and tests on strictly larger ones
//! (COLLAB₃₅, PROTEINS₂₅, D&D₂₀₀, D&D₃₀₀). The failure mode it studies is
//! models latching onto *size-correlated spurious signals* instead of the
//! size-invariant structural class signature. Our generators plant exactly
//! that situation:
//!
//! * each class has a **size-invariant structural signature** (triangle
//!   density, community structure, degree profile) that remains
//!   discriminative at any size — the "relevant" representation;
//! * within the training size range, graph **size is spuriously correlated
//!   with the label** (each class prefers a sub-band of sizes with
//!   probability `bias`), mirroring how size and class co-vary in the real
//!   TU training splits — the "irrelevant" representation;
//! * test graphs are larger and their size is **independent** of the label.
//!
//! Node features are one-hot clamped degrees, size-invariant per node.

use crate::error::DatasetError;
use crate::OodBenchmark;
use graph::algo::one_hot_degree_features;
use graph::{Graph, GraphDataset, Label, Split, TaskType};
use tensor::rng::Rng;
use tensor::Tensor;

/// Which TU-like family to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SocialFamily {
    /// 3-class collaboration ego-networks (COLLAB-like).
    Collab,
    /// 2-class protein graphs (PROTEINS-like).
    Proteins,
    /// 2-class large protein graphs (D&D-like).
    Dd,
}

impl SocialFamily {
    /// Number of classes of this family.
    pub fn num_classes(self) -> usize {
        match self {
            SocialFamily::Collab => 3,
            SocialFamily::Proteins | SocialFamily::Dd => 2,
        }
    }
}

/// Configuration of a size-shift benchmark instance.
#[derive(Clone, Debug)]
pub struct SocialConfig {
    /// Family to generate.
    pub family: SocialFamily,
    /// Benchmark display name (e.g. `"COLLAB-35"`).
    pub name: String,
    /// Training graphs.
    pub n_train: usize,
    /// Validation graphs (train-range sizes).
    pub n_val: usize,
    /// Test graphs (test-range sizes).
    pub n_test: usize,
    /// Inclusive node-count range for train/val graphs.
    pub train_sizes: (usize, usize),
    /// Inclusive node-count range for test graphs.
    pub test_sizes: (usize, usize),
    /// Probability that a training graph's size falls inside its class's
    /// preferred size sub-band (the spurious correlation strength).
    pub bias: f32,
    /// Degree clamp for one-hot features.
    pub max_degree: usize,
}

impl SocialConfig {
    /// COLLAB₃₅: train 500 on 32–35 nodes, test 4500 on larger graphs.
    /// `frac` scales graph counts and the maximum test size for quick runs.
    pub fn collab35(frac: f32) -> Self {
        let s = |n: usize| ((n as f32 * frac).round() as usize).max(24);
        SocialConfig {
            family: SocialFamily::Collab,
            name: "COLLAB-35".into(),
            n_train: s(500),
            n_val: s(100),
            n_test: s(4500),
            train_sizes: (32, 35),
            test_sizes: (36, scale_max(492, frac)),
            bias: 0.85,
            max_degree: 10,
        }
    }

    /// PROTEINS₂₅: train 500 on 4–25 nodes, test 613 on 26+ nodes.
    pub fn proteins25(frac: f32) -> Self {
        let s = |n: usize| ((n as f32 * frac).round() as usize).max(24);
        SocialConfig {
            family: SocialFamily::Proteins,
            name: "PROTEINS-25".into(),
            n_train: s(500),
            n_val: s(60),
            n_test: s(613),
            train_sizes: (6, 25),
            test_sizes: (26, scale_max(620, frac)),
            bias: 0.85,
            max_degree: 8,
        }
    }

    /// D&D₂₀₀: train 462 on 30–200 nodes, test 716 on 201+ nodes.
    pub fn dd200(frac: f32) -> Self {
        let s = |n: usize| ((n as f32 * frac).round() as usize).max(24);
        SocialConfig {
            family: SocialFamily::Dd,
            name: "D&D-200".into(),
            n_train: s(462),
            n_val: s(50),
            n_test: s(716),
            train_sizes: (30, 200),
            test_sizes: (201, scale_max(1200, frac)),
            bias: 0.85,
            max_degree: 10,
        }
    }

    /// D&D₃₀₀: train 500 on 30–300 nodes, test on graphs of all sizes
    /// (30 up to the maximum), as in the paper's D&D₃₀₀ protocol.
    pub fn dd300(frac: f32) -> Self {
        let s = |n: usize| ((n as f32 * frac).round() as usize).max(24);
        SocialConfig {
            family: SocialFamily::Dd,
            name: "D&D-300".into(),
            n_train: s(500),
            n_val: s(50),
            n_test: s(678),
            train_sizes: (30, 300),
            test_sizes: (30, scale_max(1400, frac)),
            bias: 0.85,
            max_degree: 10,
        }
    }
}

/// Scale a maximum test size with `frac`, keeping it meaningfully larger
/// than typical training sizes.
fn scale_max(max: usize, frac: f32) -> usize {
    ((max as f32 * frac.max(0.2)) as usize).max(64).min(max)
}

// ---------------------------------------------------------------- builders
//
// Every class signature is a *noisy, size-invariant structural density*:
// the class sets the mean of a latent density parameter with overlapping
// class-conditional distributions, so the invariant signal carries
// irreducible error — while graph size predicts the label almost perfectly
// inside the training range. That asymmetry (noisy invariant cue vs. clean
// spurious cue) is what makes ERM baselines latch onto size and collapse on
// larger test graphs, the failure mode of the paper's Table 3.

/// Clamped Gaussian latent for a class-conditional density parameter.
fn class_density(mean: f32, std: f32, rng: &mut Rng) -> f32 {
    (mean + std * rng.normal()).clamp(0.02, 0.98)
}

/// Collaboration ego-net: each arriving node closes a triangle over an
/// existing edge with probability `theta` (clustered collaboration), else
/// attaches to two random earlier nodes (open collaboration). `theta` is
/// the class's latent clustering level.
fn build_collab(n: usize, theta: f32, rng: &mut Rng) -> Graph {
    let mut g = Graph::new(n, Tensor::zeros([n, 1]), Label::Class(0));
    if n >= 2 {
        g.add_undirected_edge(0, 1);
    }
    for v in 2..n {
        if rng.bernoulli(theta) {
            let e = g.edges()[rng.below(g.edges().len())];
            let (a, b) = (e.0 as usize, e.1 as usize);
            if a != v {
                g.add_undirected_edge(v, a);
            }
            if b != a && b != v {
                g.add_undirected_edge(v, b);
            }
        } else {
            let a = rng.below(v);
            g.add_undirected_edge(v, a);
            let b = rng.below(v);
            if b != a {
                g.add_undirected_edge(v, b);
            }
        }
    }
    g
}

/// Protein contact chain: a backbone path where each residue becomes a
/// "contact hub" with probability `p` (gaining an extra short-range
/// contact). The class signal is the *density of hub residues* — visible
/// to 1-WL message passing through the degree histogram and size-invariant
/// under mean pooling.
fn build_protein_chain(n: usize, p: f32, rng: &mut Rng) -> Graph {
    let mut g = Graph::new(n, Tensor::zeros([n, 1]), Label::Class(0));
    for i in 1..n {
        g.add_undirected_edge(i - 1, i);
    }
    for i in 0..n {
        if rng.bernoulli(p) {
            // Contact to a residue 2–5 positions away along the chain.
            let d = rng.range_inclusive(2, 5);
            let j = if i + d < n {
                i + d
            } else {
                i.saturating_sub(d)
            };
            if j != i && !g.has_edge(i, j) {
                g.add_undirected_edge(i, j);
            }
        }
    }
    g
}

/// Amino-acid contact lattice: a 2-D grid where each cell's diagonal
/// contact exists with probability `q` (globular folding density).
fn build_dd_lattice(n: usize, q: f32, rng: &mut Rng) -> Graph {
    let w = (n as f32).sqrt().ceil() as usize;
    let mut g = Graph::new(n, Tensor::zeros([n, 1]), Label::Class(0));
    let id = |r: usize, c: usize| r * w + c;
    for r in 0..n.div_ceil(w) {
        for c in 0..w {
            let v = id(r, c);
            if v >= n {
                continue;
            }
            if c + 1 < w && id(r, c + 1) < n {
                g.add_undirected_edge(v, id(r, c + 1));
            }
            if id(r + 1, c) < n {
                g.add_undirected_edge(v, id(r + 1, c));
            }
            if c + 1 < w && id(r + 1, c + 1) < n && rng.bernoulli(q) {
                g.add_undirected_edge(v, id(r + 1, c + 1)); // diagonal contact
            }
        }
    }
    g
}

/// Build one structural graph of the given family and class. The class
/// sets the mean of the latent density; the overlap between class means
/// (±1σ bands touch) makes the structural signal noisy by design.
fn build_structure(family: SocialFamily, class: usize, n: usize, rng: &mut Rng) -> Graph {
    match family {
        SocialFamily::Collab => {
            let theta = class_density(0.15 + 0.30 * class as f32, 0.10, rng);
            build_collab(n, theta, rng)
        }
        SocialFamily::Proteins => {
            let p = class_density(0.15 + 0.30 * class as f32, 0.10, rng);
            build_protein_chain(n, p, rng)
        }
        SocialFamily::Dd => {
            let q = class_density(0.35 + 0.30 * class as f32, 0.18, rng);
            build_dd_lattice(n, q, rng)
        }
    }
}

/// Sample a training-range size with the class-conditional spurious bias:
/// with probability `bias` the size comes from the class's sub-band of the
/// training range, otherwise uniformly from the whole range.
fn biased_train_size(
    class: usize,
    num_classes: usize,
    range: (usize, usize),
    bias: f32,
    rng: &mut Rng,
) -> usize {
    let (lo, hi) = range;
    if rng.bernoulli(bias) {
        let span = hi - lo + 1;
        let band = (span / num_classes).max(1);
        let b_lo = lo + class * band;
        let b_hi = if class + 1 == num_classes {
            hi
        } else {
            (b_lo + band - 1).min(hi)
        };
        rng.range_inclusive(b_lo.min(hi), b_hi)
    } else {
        rng.range_inclusive(lo, hi)
    }
}

/// Append a graph-size channel `ln(n)/ln(1000)` to every node's features.
/// Real TU node features leak graph size through degree statistics and ego
/// degrees; exposing it as an explicit channel makes the spurious size cue
/// available to the encoder under any readout — which is precisely the
/// temptation the size-shift benchmark studies.
fn with_size_channel(feats: Tensor, n: usize) -> Tensor {
    let (rows, cols) = feats.shape().as_matrix();
    let size_val = (n as f32).ln() / 1000f32.ln();
    let mut out = Tensor::zeros([rows, cols + 1]);
    for i in 0..rows {
        for j in 0..cols {
            *out.at_mut(i, j) = feats.at(i, j);
        }
        *out.at_mut(i, cols) = size_val;
    }
    out
}

/// Log-uniform size in `[lo, hi]` (test graphs span a wide size range).
fn log_uniform_size(lo: usize, hi: usize, rng: &mut Rng) -> usize {
    if lo >= hi {
        return lo;
    }
    let (l, h) = ((lo as f32).ln(), (hi as f32).ln());
    (rng.uniform(l, h).exp().round() as usize).clamp(lo, hi)
}

/// Generate a size-shift benchmark, validating the configuration first.
///
/// # Errors
/// [`DatasetError::InvalidConfig`] when a split is empty, a size range is
/// inverted or degenerate, or the bias is outside `[0, 1]`.
pub fn try_generate(config: &SocialConfig, seed: u64) -> Result<OodBenchmark, DatasetError> {
    if config.n_train == 0 {
        return Err(DatasetError::InvalidConfig("n_train must be > 0".into()));
    }
    for (name, (lo, hi)) in [
        ("train_sizes", config.train_sizes),
        ("test_sizes", config.test_sizes),
    ] {
        if lo > hi {
            return Err(DatasetError::InvalidConfig(format!(
                "{name} range ({lo}, {hi}) is inverted"
            )));
        }
        if lo < 3 {
            return Err(DatasetError::InvalidConfig(format!(
                "{name} minimum {lo} is too small for a structured graph (need ≥ 3 nodes)"
            )));
        }
    }
    if !(0.0..=1.0).contains(&config.bias) {
        return Err(DatasetError::InvalidConfig(format!(
            "bias {} must lie in [0, 1]",
            config.bias
        )));
    }
    if config.max_degree == 0 {
        return Err(DatasetError::InvalidConfig("max_degree must be > 0".into()));
    }
    Ok(generate(config, seed))
}

/// Generate a size-shift benchmark for the given configuration.
pub fn generate(config: &SocialConfig, seed: u64) -> OodBenchmark {
    let mut rng = Rng::seed_from(seed);
    let classes = config.family.num_classes();
    let total = config.n_train + config.n_val + config.n_test;
    let mut graphs = Vec::with_capacity(total);
    let mut split = Split::default();
    for i in 0..total {
        let class = rng.below(classes);
        let is_test = i >= config.n_train + config.n_val;
        let n = if is_test {
            log_uniform_size(config.test_sizes.0, config.test_sizes.1, &mut rng)
        } else {
            biased_train_size(class, classes, config.train_sizes, config.bias, &mut rng)
        };
        let structure = build_structure(config.family, class, n, &mut rng);
        let feats = with_size_channel(one_hot_degree_features(&structure, config.max_degree), n);
        let mut g = Graph::new(n, feats, Label::Class(class));
        for &(s, d) in structure.edges() {
            g.add_directed_edge(s as usize, d as usize);
        }
        if is_test {
            split.test.push(i);
        } else if i >= config.n_train {
            split.val.push(i);
        } else {
            split.train.push(i);
        }
        graphs.push(g);
    }
    let dataset = GraphDataset::new(
        config.name.clone(),
        graphs,
        TaskType::MultiClass { classes },
    );
    OodBenchmark { dataset, split }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::algo::{is_connected, triangle_count};

    #[test]
    fn try_generate_validates_config() {
        let mut bad = SocialConfig::proteins25(0.3);
        bad.bias = 1.5;
        assert!(matches!(
            try_generate(&bad, 1),
            Err(DatasetError::InvalidConfig(_))
        ));
        let mut inverted = SocialConfig::proteins25(0.3);
        inverted.test_sizes = (40, 30);
        assert!(try_generate(&inverted, 1).is_err());
        assert!(try_generate(&SocialConfig::proteins25(0.3), 1).is_ok());
    }

    /// Mean triangles-per-node over repeated draws of a builder.
    fn mean_triangle_rate(build: impl Fn(&mut Rng) -> Graph, rng: &mut Rng, reps: usize) -> f32 {
        let mut acc = 0f32;
        for _ in 0..reps {
            let g = build(rng);
            acc += triangle_count(&g) as f32 / g.num_nodes() as f32;
        }
        acc / reps as f32
    }

    #[test]
    fn proteins_classes_differ_in_expected_triangle_rate() {
        let mut rng = Rng::seed_from(1);
        let n = 40;
        let c0 = mean_triangle_rate(
            |r| build_structure(SocialFamily::Proteins, 0, n, r),
            &mut rng,
            30,
        );
        let c1 = mean_triangle_rate(
            |r| build_structure(SocialFamily::Proteins, 1, n, r),
            &mut rng,
            30,
        );
        assert!(
            c1 > 1.5 * c0,
            "class 1 should be triangle-richer: {c0} vs {c1}"
        );
    }

    #[test]
    fn proteins_signal_is_noisy_by_design() {
        // Individual draws of the two classes must overlap — the invariant
        // signal is intentionally imperfect.
        let mut rng = Rng::seed_from(2);
        let n = 40;
        let draws = |class: usize, rng: &mut Rng| -> Vec<f32> {
            (0..40)
                .map(|_| {
                    let g = build_structure(SocialFamily::Proteins, class, n, rng);
                    triangle_count(&g) as f32 / g.num_nodes() as f32
                })
                .collect()
        };
        let c0 = draws(0, &mut rng);
        let c1 = draws(1, &mut rng);
        let max0 = c0.iter().copied().fold(f32::MIN, f32::max);
        let min1 = c1.iter().copied().fold(f32::MAX, f32::min);
        assert!(
            min1 < max0,
            "class densities should overlap ({min1} vs {max0})"
        );
    }

    #[test]
    fn collab_classes_differ_in_clustering() {
        let mut rng = Rng::seed_from(3);
        let n = 60;
        let low = mean_triangle_rate(
            |r| build_structure(SocialFamily::Collab, 0, n, r),
            &mut rng,
            20,
        );
        let high = mean_triangle_rate(
            |r| build_structure(SocialFamily::Collab, 2, n, r),
            &mut rng,
            20,
        );
        assert!(high > 1.5 * low, "{low} vs {high}");
    }

    #[test]
    fn dd_classes_differ_in_diagonal_density() {
        let mut rng = Rng::seed_from(4);
        let n = 100;
        let low = mean_triangle_rate(|r| build_structure(SocialFamily::Dd, 0, n, r), &mut rng, 10);
        let high = mean_triangle_rate(|r| build_structure(SocialFamily::Dd, 1, n, r), &mut rng, 10);
        assert!(high > 1.3 * low, "{low} vs {high}");
    }

    #[test]
    fn builders_produce_connected_graphs() {
        let mut rng = Rng::seed_from(5);
        for n in [10usize, 33, 80] {
            assert!(is_connected(&build_collab(n, 0.4, &mut rng)));
            assert!(is_connected(&build_protein_chain(n, 0.5, &mut rng)));
            assert!(is_connected(&build_dd_lattice(n, 0.5, &mut rng)));
        }
    }

    #[test]
    fn protein_hub_density_is_size_invariant() {
        // The class signal is the *fraction* of hub residues: it must not
        // drift as graphs grow, so it survives the size shift.
        let mut rng = Rng::seed_from(6);
        let hub_fraction = |n: usize, p: f32, rng: &mut Rng| -> f32 {
            let mut acc = 0f32;
            let reps = 20;
            for _ in 0..reps {
                let g = build_protein_chain(n, p, rng);
                let hubs = graph::algo::undirected_degrees(&g)
                    .iter()
                    .filter(|&&d| d >= 3)
                    .count();
                acc += hubs as f32 / n as f32;
            }
            acc / reps as f32
        };
        let small = hub_fraction(20, 0.4, &mut rng);
        let large = hub_fraction(200, 0.4, &mut rng);
        assert!(
            (small - large).abs() < 0.12,
            "hub fraction drifts: {small} vs {large}"
        );
        // And the class parameter moves it.
        let lo = hub_fraction(60, 0.15, &mut rng);
        let hi = hub_fraction(60, 0.45, &mut rng);
        assert!(hi > lo + 0.1, "class signal too weak: {lo} vs {hi}");
    }

    #[test]
    fn size_channel_encodes_graph_size() {
        let bench = generate(&SocialConfig::proteins25(0.05), 8);
        let dim = bench.dataset.feature_dim();
        for &i in bench.split.train.iter().take(5) {
            let g = bench.dataset.graph(i);
            let expect = (g.num_nodes() as f32).ln() / 1000f32.ln();
            for r in 0..g.num_nodes() {
                assert!((g.features().at(r, dim - 1) - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn size_split_holds() {
        let cfg = SocialConfig::proteins25(0.08);
        let bench = generate(&cfg, 4);
        bench.validate().unwrap();
        for &i in &bench.split.train {
            assert!(bench.dataset.graph(i).num_nodes() <= cfg.train_sizes.1);
        }
        for &i in &bench.split.test {
            assert!(bench.dataset.graph(i).num_nodes() >= cfg.test_sizes.0);
        }
    }

    #[test]
    fn train_sizes_correlate_with_class_but_test_sizes_do_not() {
        let cfg = SocialConfig::collab35(0.5);
        let bench = generate(&cfg, 5);
        // In train, class 0 should have smaller average size than class 2.
        let avg_size = |ids: &[usize], class: usize| -> f32 {
            let sel: Vec<usize> = ids
                .iter()
                .copied()
                .filter(|&i| bench.dataset.graph(i).label().class() == class)
                .collect();
            let total: usize = sel
                .iter()
                .map(|&i| bench.dataset.graph(i).num_nodes())
                .sum();
            total as f32 / sel.len().max(1) as f32
        };
        let d_train = avg_size(&bench.split.train, 2) - avg_size(&bench.split.train, 0);
        assert!(
            d_train > 1.0,
            "train size/class correlation too weak: {d_train}"
        );
    }

    #[test]
    fn dd_configs_have_disjoint_or_overlapping_ranges_as_specified() {
        let d200 = SocialConfig::dd200(0.1);
        assert!(d200.test_sizes.0 > d200.train_sizes.1);
        let d300 = SocialConfig::dd300(0.1);
        assert!(
            d300.test_sizes.0 <= d300.train_sizes.1,
            "D&D-300 tests on all sizes"
        );
    }

    #[test]
    fn determinism() {
        let cfg = SocialConfig::proteins25(0.05);
        let a = generate(&cfg, 9);
        let b = generate(&cfg, 9);
        assert_eq!(a.dataset.len(), b.dataset.len());
        for (ga, gb) in a.dataset.graphs().iter().zip(b.dataset.graphs()) {
            assert_eq!(ga.edges(), gb.edges());
            assert_eq!(ga.label(), gb.label());
        }
    }

    #[test]
    fn lattice_builder_valid_at_nonsquare_sizes() {
        let mut rng = Rng::seed_from(10);
        for n in [7usize, 30, 50, 101] {
            let g = build_dd_lattice(n, 0.7, &mut rng);
            assert!(g.validate().is_ok());
            assert!(g.num_edges() + 1 >= n);
        }
    }
}
