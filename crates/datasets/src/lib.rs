//! # ood-datasets
//!
//! Synthetic out-of-distribution graph benchmarks reproducing the data
//! regimes of the OOD-GNN paper, plus evaluation metrics.
//!
//! The paper evaluates on 14 datasets in three families (its Table 1):
//!
//! * **Synthetic** — [`triangles`] (size shift) and [`mnistsp`] (feature
//!   noise shift on superpixel graphs).
//! * **Molecule & social, size split** — [`social`] provides COLLAB-,
//!   PROTEINS- and D&D-like generators where graph size is spuriously
//!   correlated with the label inside the training range and the test set
//!   contains strictly larger graphs.
//! * **OGB-like molecules, scaffold split** — [`molgen`] is a synthetic
//!   molecule engine (scaffold ring systems + functional-group motifs with
//!   a scaffold↔label spurious correlation in training scaffolds);
//!   [`ogb`] instantiates the nine named OGBG-MOL* configurations.
//!
//! Every generator is deterministic given its seed and returns a
//! [`graph::GraphDataset`] together with the OOD [`graph::Split`] that the
//! paper's protocol prescribes.

pub mod error;
pub mod metrics;
pub mod mnistsp;
pub mod molgen;
pub mod ogb;
pub mod social;
pub mod stats;
pub mod triangles;

pub use error::DatasetError;

/// A dataset bundled with its OOD train/val/test split.
pub struct OodBenchmark {
    /// The underlying dataset.
    pub dataset: graph::GraphDataset,
    /// The distribution-shift split.
    pub split: graph::Split,
}

impl OodBenchmark {
    /// Sanity-check split indices against the dataset.
    pub fn validate(&self) -> Result<(), String> {
        self.split.validate(self.dataset.len())
    }
}
