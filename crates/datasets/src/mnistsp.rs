//! MNIST-75SP-like superpixel graphs with feature-noise distribution shift
//! (paper §4.1.2, Table 2).
//!
//! The paper converts MNIST images into ≤75-superpixel graphs and tests
//! under two feature shifts: `Test(noise)` adds `N(0, 0.4)` noise to node
//! features, `Test(color)` adds two extra color channels with independent
//! noise. MNIST itself is unavailable here, so we synthesize the digits:
//! each class has a polyline *stroke template*; a random affine jitter and
//! point jitter produce a rasterized point cloud; grid clustering yields at
//! most 75 superpixels (centroid + mean intensity); a spatial k-NN graph
//! connects them. The class-discriminative signal (stroke geometry encoded
//! in graph topology and coordinates) and the shift mechanism (test-time
//! feature noise, structures unchanged) match the paper's setup exactly.
//!
//! Node features are 5-dimensional `[x, y, c1, c2, c3]`. At train time the
//! three intensity channels are identical (grayscale). `Test(noise)` adds
//! one shared noise draw to all channels; `Test(color)` adds independent
//! noise per channel. This keeps the feature schema fixed across variants
//! (the paper's colorization changes channel count; we instead pre-allocate
//! the channels — the shift mechanism, noisy/colored intensities at test
//! time only, is preserved).

use crate::error::DatasetError;
use crate::OodBenchmark;
use graph::{Graph, GraphDataset, Label, Split, TaskType};
use tensor::rng::Rng;
use tensor::Tensor;

/// Feature-noise variant of the test set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NoiseVariant {
    /// Clean features (in-distribution).
    Clean,
    /// Shared Gaussian noise `N(0, σ)` on intensity channels.
    Noise,
    /// Independent Gaussian noise per intensity channel ("colorized").
    Color,
}

/// Configuration for the synthetic MNIST-75SP generator.
#[derive(Clone, Debug)]
pub struct MnistSpConfig {
    /// Training graphs (paper: 6000).
    pub n_train: usize,
    /// Validation graphs (paper: 500).
    pub n_val: usize,
    /// Test graphs per variant (paper: 500).
    pub n_test: usize,
    /// Maximum number of superpixels (paper: 75).
    pub max_superpixels: usize,
    /// k for the spatial k-NN graph.
    pub knn: usize,
    /// Test-time noise standard deviation (paper: 0.4).
    pub noise_std: f32,
    /// Which noise variant the test set uses.
    pub test_variant: NoiseVariant,
}

impl Default for MnistSpConfig {
    fn default() -> Self {
        MnistSpConfig {
            n_train: 6000,
            n_val: 500,
            n_test: 500,
            max_superpixels: 75,
            knn: 8,
            noise_std: 0.4,
            test_variant: NoiseVariant::Noise,
        }
    }
}

impl MnistSpConfig {
    /// Proportionally smaller instance for fast experiments.
    pub fn scaled(frac: f32) -> Self {
        let d = Self::default();
        let s = |n: usize| ((n as f32 * frac).round() as usize).max(20);
        MnistSpConfig {
            n_train: s(d.n_train),
            n_val: s(d.n_val),
            n_test: s(d.n_test),
            ..d
        }
    }

    /// Same config with a different test variant.
    pub fn with_variant(mut self, v: NoiseVariant) -> Self {
        self.test_variant = v;
        self
    }
}

/// Number of digit classes.
pub const NUM_CLASSES: usize = 10;
/// Node feature dimension: x, y and three intensity channels.
pub const FEATURE_DIM: usize = 5;

/// Stroke template for one digit: a list of polylines in `[0,1]²`.
fn digit_strokes(digit: usize) -> Vec<Vec<(f32, f32)>> {
    debug_assert!(digit < NUM_CLASSES, "digit {digit} out of range");
    // Hand-designed skeletons; coordinates are (x, y) with y growing upward.
    match digit {
        0 => vec![vec![
            (0.5, 0.9),
            (0.25, 0.75),
            (0.2, 0.5),
            (0.25, 0.25),
            (0.5, 0.1),
            (0.75, 0.25),
            (0.8, 0.5),
            (0.75, 0.75),
            (0.5, 0.9),
        ]],
        1 => vec![
            vec![(0.35, 0.7), (0.5, 0.9), (0.5, 0.1)],
            vec![(0.35, 0.1), (0.65, 0.1)],
        ],
        2 => vec![vec![
            (0.25, 0.75),
            (0.45, 0.9),
            (0.7, 0.8),
            (0.7, 0.6),
            (0.3, 0.3),
            (0.2, 0.1),
            (0.8, 0.1),
        ]],
        3 => vec![vec![
            (0.25, 0.85),
            (0.6, 0.9),
            (0.75, 0.75),
            (0.55, 0.55),
            (0.4, 0.5),
            (0.55, 0.45),
            (0.75, 0.3),
            (0.6, 0.1),
            (0.25, 0.15),
        ]],
        4 => vec![vec![(0.65, 0.1), (0.65, 0.9), (0.2, 0.35), (0.85, 0.35)]],
        5 => vec![vec![
            (0.75, 0.9),
            (0.3, 0.9),
            (0.28, 0.55),
            (0.6, 0.6),
            (0.78, 0.4),
            (0.6, 0.12),
            (0.25, 0.15),
        ]],
        6 => vec![vec![
            (0.7, 0.85),
            (0.4, 0.75),
            (0.25, 0.45),
            (0.3, 0.2),
            (0.55, 0.1),
            (0.75, 0.25),
            (0.7, 0.45),
            (0.45, 0.5),
            (0.28, 0.4),
        ]],
        7 => vec![
            vec![(0.2, 0.9), (0.8, 0.9), (0.45, 0.1)],
            vec![(0.35, 0.5), (0.65, 0.5)],
        ],
        8 => vec![
            vec![
                (0.5, 0.9),
                (0.3, 0.75),
                (0.4, 0.55),
                (0.5, 0.5),
                (0.6, 0.55),
                (0.7, 0.75),
                (0.5, 0.9),
            ],
            vec![
                (0.5, 0.5),
                (0.3, 0.35),
                (0.4, 0.12),
                (0.5, 0.1),
                (0.6, 0.12),
                (0.7, 0.35),
                (0.5, 0.5),
            ],
        ],
        // Digits are always drawn below NUM_CLASSES; fold any larger value
        // onto the 9 skeleton instead of panicking deep in generation.
        _ => vec![vec![
            (0.72, 0.6),
            (0.5, 0.75),
            (0.3, 0.65),
            (0.3, 0.5),
            (0.5, 0.42),
            (0.72, 0.55),
            (0.72, 0.9),
            (0.65, 0.3),
            (0.5, 0.1),
        ]],
    }
}

/// Rasterize a digit with random affine + point jitter into a point cloud.
fn rasterize(digit: usize, rng: &mut Rng) -> Vec<(f32, f32, f32)> {
    let strokes = digit_strokes(digit);
    let angle = rng.uniform(-0.25, 0.25);
    let scale = rng.uniform(0.85, 1.15);
    let (dx, dy) = (rng.uniform(-0.06, 0.06), rng.uniform(-0.06, 0.06));
    let (sin, cos) = angle.sin_cos();
    let mut pts = Vec::new();
    for stroke in strokes {
        for seg in stroke.windows(2) {
            let (x0, y0) = seg[0];
            let (x1, y1) = seg[1];
            let len = ((x1 - x0).powi(2) + (y1 - y0).powi(2)).sqrt();
            let steps = (len * 60.0).ceil().max(2.0) as usize;
            for k in 0..steps {
                let t = k as f32 / steps as f32;
                let (mut x, mut y) = (x0 + t * (x1 - x0), y0 + t * (y1 - y0));
                // Affine around center.
                x -= 0.5;
                y -= 0.5;
                let (xr, yr) = (cos * x - sin * y, sin * x + cos * y);
                x = 0.5 + scale * xr + dx;
                y = 0.5 + scale * yr + dy;
                // Point jitter and intensity falloff.
                x += rng.normal() * 0.012;
                y += rng.normal() * 0.012;
                let intensity = rng.uniform(0.7, 1.0);
                pts.push((x.clamp(0.0, 1.0), y.clamp(0.0, 1.0), intensity));
            }
        }
    }
    pts
}

/// Cluster a point cloud into at most `max_sp` superpixels via grid binning:
/// the grid resolution is the smallest square grid whose occupied cells fit
/// the budget. Returns `(x, y, intensity)` centroids.
fn superpixels(points: &[(f32, f32, f32)], max_sp: usize) -> Vec<(f32, f32, f32)> {
    let mut res = (max_sp as f32).sqrt().ceil() as usize + 2;
    loop {
        let mut cells: std::collections::BTreeMap<(usize, usize), (f32, f32, f32, f32)> =
            std::collections::BTreeMap::new();
        for &(x, y, c) in points {
            let gx = ((x * res as f32) as usize).min(res - 1);
            let gy = ((y * res as f32) as usize).min(res - 1);
            let e = cells.entry((gx, gy)).or_insert((0.0, 0.0, 0.0, 0.0));
            e.0 += x;
            e.1 += y;
            e.2 += c;
            e.3 += 1.0;
        }
        if cells.len() <= max_sp || res <= 2 {
            return cells
                .values()
                .map(|&(sx, sy, sc, n)| (sx / n, sy / n, sc / n))
                .collect();
        }
        res -= 1;
    }
}

/// Build the spatial k-NN graph over superpixels with the given features.
fn build_graph(sp: &[(f32, f32, f32)], knn: usize, label: usize) -> Graph {
    let n = sp.len();
    let mut feats = Tensor::zeros([n, FEATURE_DIM]);
    for (i, &(x, y, c)) in sp.iter().enumerate() {
        *feats.at_mut(i, 0) = x;
        *feats.at_mut(i, 1) = y;
        *feats.at_mut(i, 2) = c;
        *feats.at_mut(i, 3) = c;
        *feats.at_mut(i, 4) = c;
    }
    let mut g = Graph::new(n, feats, Label::Class(label));
    let k = knn.min(n.saturating_sub(1));
    let mut added = std::collections::BTreeSet::new();
    for i in 0..n {
        let mut dists: Vec<(f32, usize)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let dx = sp[i].0 - sp[j].0;
                let dy = sp[i].1 - sp[j].1;
                (dx * dx + dy * dy, j)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        for &(_, j) in dists.iter().take(k) {
            let key = (i.min(j), i.max(j));
            if added.insert(key) {
                g.add_undirected_edge(i, j);
            }
        }
    }
    g
}

/// Apply a test-time noise variant to a graph's intensity channels.
pub fn apply_noise(g: &mut Graph, variant: NoiseVariant, std: f32, rng: &mut Rng) {
    if variant == NoiseVariant::Clean {
        return;
    }
    let n = g.num_nodes();
    for i in 0..n {
        match variant {
            NoiseVariant::Noise => {
                let e = rng.normal() * std;
                for ch in 2..FEATURE_DIM {
                    *g.features_mut().at_mut(i, ch) += e;
                }
            }
            NoiseVariant::Color => {
                for ch in 2..FEATURE_DIM {
                    *g.features_mut().at_mut(i, ch) += rng.normal() * std;
                }
            }
            NoiseVariant::Clean => unreachable!(),
        }
    }
}

/// Generate the benchmark, validating the configuration first.
///
/// # Errors
/// [`DatasetError::InvalidConfig`] when a split is empty, the superpixel
/// budget or k-NN degree is zero, or the noise level is not a finite
/// non-negative number.
pub fn try_generate(config: &MnistSpConfig, seed: u64) -> Result<OodBenchmark, DatasetError> {
    if config.n_train == 0 {
        return Err(DatasetError::InvalidConfig("n_train must be > 0".into()));
    }
    if config.max_superpixels == 0 {
        return Err(DatasetError::InvalidConfig(
            "max_superpixels must be > 0".into(),
        ));
    }
    if config.knn == 0 {
        return Err(DatasetError::InvalidConfig("knn must be > 0".into()));
    }
    if !config.noise_std.is_finite() || config.noise_std < 0.0 {
        return Err(DatasetError::InvalidConfig(format!(
            "noise_std {} must be finite and ≥ 0",
            config.noise_std
        )));
    }
    Ok(generate(config, seed))
}

/// Generate the benchmark: clean train/val graphs plus a test set with the
/// configured noise variant applied.
pub fn generate(config: &MnistSpConfig, seed: u64) -> OodBenchmark {
    let mut rng = Rng::seed_from(seed);
    // Noise uses an independent stream so that the graph structures are
    // bit-identical across noise variants for a given seed.
    let mut noise_rng = Rng::seed_from(seed ^ 0xABCD_EF01_2345_6789);
    let total = config.n_train + config.n_val + config.n_test;
    let mut graphs = Vec::with_capacity(total);
    let mut split = Split::default();
    for i in 0..total {
        let digit = rng.below(NUM_CLASSES);
        let pts = rasterize(digit, &mut rng);
        let sp = superpixels(&pts, config.max_superpixels);
        let mut g = build_graph(&sp, config.knn, digit);
        if i >= config.n_train + config.n_val {
            apply_noise(
                &mut g,
                config.test_variant,
                config.noise_std,
                &mut noise_rng,
            );
            split.test.push(i);
        } else if i >= config.n_train {
            split.val.push(i);
        } else {
            split.train.push(i);
        }
        graphs.push(g);
    }
    let dataset = GraphDataset::new(
        "MNIST-75SP",
        graphs,
        TaskType::MultiClass {
            classes: NUM_CLASSES,
        },
    );
    OodBenchmark { dataset, split }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_generate_validates_config() {
        let bad = MnistSpConfig {
            knn: 0,
            ..MnistSpConfig::scaled(0.005)
        };
        assert!(matches!(
            try_generate(&bad, 1),
            Err(DatasetError::InvalidConfig(_))
        ));
        let nan_noise = MnistSpConfig {
            noise_std: f32::NAN,
            ..MnistSpConfig::scaled(0.005)
        };
        assert!(try_generate(&nan_noise, 1).is_err());
        assert!(try_generate(&MnistSpConfig::scaled(0.005), 1).is_ok());
    }

    #[test]
    fn superpixel_budget_respected() {
        let mut rng = Rng::seed_from(1);
        for digit in 0..NUM_CLASSES {
            let pts = rasterize(digit, &mut rng);
            let sp = superpixels(&pts, 75);
            assert!(sp.len() <= 75, "digit {digit}: {} superpixels", sp.len());
            assert!(sp.len() >= 8, "digit {digit}: too few superpixels");
        }
    }

    #[test]
    fn graphs_are_spatially_connected_mostly() {
        let bench = generate(&MnistSpConfig::scaled(0.005), 2);
        for g in bench.dataset.graphs() {
            assert!(g.num_edges() >= g.num_nodes() - 1);
        }
    }

    #[test]
    fn train_channels_are_grayscale() {
        let bench = generate(&MnistSpConfig::scaled(0.005), 3);
        for &i in &bench.split.train {
            let g = bench.dataset.graph(i);
            for r in 0..g.num_nodes() {
                let f = g.features().row(r);
                assert_eq!(f[2], f[3]);
                assert_eq!(f[3], f[4]);
            }
        }
    }

    #[test]
    fn noise_variant_perturbs_all_channels_equally() {
        let cfg = MnistSpConfig::scaled(0.005).with_variant(NoiseVariant::Noise);
        let bench = generate(&cfg, 4);
        let mut any_noise = false;
        for &i in &bench.split.test {
            let g = bench.dataset.graph(i);
            for r in 0..g.num_nodes() {
                let f = g.features().row(r);
                // Channels stay equal (shared draw) but differ from clean.
                assert!((f[2] - f[3]).abs() < 1e-6);
                assert!((f[3] - f[4]).abs() < 1e-6);
                if f[2] < 0.0 || f[2] > 1.0 {
                    any_noise = true;
                }
            }
        }
        assert!(any_noise, "noise should push some intensities out of [0,1]");
    }

    #[test]
    fn color_variant_decorrelates_channels() {
        let cfg = MnistSpConfig::scaled(0.005).with_variant(NoiseVariant::Color);
        let bench = generate(&cfg, 5);
        let mut diffs = 0usize;
        let mut total = 0usize;
        for &i in &bench.split.test {
            let g = bench.dataset.graph(i);
            for r in 0..g.num_nodes() {
                let f = g.features().row(r);
                total += 1;
                if (f[2] - f[3]).abs() > 1e-4 || (f[3] - f[4]).abs() > 1e-4 {
                    diffs += 1;
                }
            }
        }
        assert!(diffs as f32 / total as f32 > 0.95, "{diffs}/{total}");
    }

    #[test]
    fn structures_unchanged_by_noise() {
        // Same seed, clean vs noise: identical topology, different features.
        let clean = generate(
            &MnistSpConfig::scaled(0.005).with_variant(NoiseVariant::Clean),
            6,
        );
        let noisy = generate(
            &MnistSpConfig::scaled(0.005).with_variant(NoiseVariant::Noise),
            6,
        );
        for (&i, &j) in clean.split.test.iter().zip(noisy.split.test.iter()) {
            let gc = clean.dataset.graph(i);
            let gn = noisy.dataset.graph(j);
            assert_eq!(gc.edges(), gn.edges());
        }
    }

    #[test]
    fn all_classes_represented() {
        let bench = generate(&MnistSpConfig::scaled(0.02), 7);
        let mut seen = [false; NUM_CLASSES];
        for g in bench.dataset.graphs() {
            seen[g.label().class()] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
