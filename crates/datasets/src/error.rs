//! Typed errors for the dataset generators.
//!
//! Every generator has a `try_generate` entry point that validates its
//! configuration up front and returns a [`DatasetError`] instead of
//! panicking mid-generation; the plain `generate` functions keep their
//! infallible signatures for valid configs.

use std::fmt;

/// Why a dataset could not be generated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A configuration field is out of its valid range.
    InvalidConfig(String),
    /// The requested task layout is not supported by this generator.
    UnsupportedTask(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::InvalidConfig(msg) => write!(f, "invalid dataset config: {msg}"),
            DatasetError::UnsupportedTask(msg) => write!(f, "unsupported task: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_problem() {
        let e = DatasetError::InvalidConfig("n_train must be > 0".into());
        assert!(e.to_string().contains("n_train"));
        let e = DatasetError::UnsupportedTask("multi-class molecules".into());
        assert!(e.to_string().contains("multi-class"));
    }
}
