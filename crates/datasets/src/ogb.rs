//! The nine OGB-like molecular property datasets of the paper's Table 4
//! (TOX21, BACE, BBBP, CLINTOX, SIDER, TOXCAST, HIV, ESOL, FREESOLV), each
//! built on the [`crate::molgen`] engine with a scaffold split.
//!
//! Task layouts (number of tasks, classification vs. regression) and
//! approximate sizes follow the paper's Table 1. Dataset sizes can be
//! capped for CPU-scale experiments; the scaffold-split protocol
//! (frequency-ordered 80/10/10) matches OGB's.

use crate::error::DatasetError;
use crate::molgen::{generate_molecules, MolConfig};
use crate::OodBenchmark;
use graph::split::scaffold_split;
use graph::{GraphDataset, TaskType};

/// The nine datasets of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OgbDataset {
    /// 12-task toxicology panel.
    Tox21,
    /// β-secretase inhibition (single task).
    Bace,
    /// Blood–brain-barrier penetration (single task).
    Bbbp,
    /// Clinical toxicity (2 tasks).
    Clintox,
    /// 27-task side-effect panel.
    Sider,
    /// 12-task in-vitro screening panel (task count per the paper's
    /// Table 1).
    Toxcast,
    /// HIV replication inhibition (single task; the paper's largest
    /// dataset, 41 127 molecules).
    Hiv,
    /// Water solubility regression.
    Esol,
    /// Hydration free-energy regression.
    Freesolv,
}

/// All nine datasets in Table 4 order.
pub const ALL: [OgbDataset; 9] = [
    OgbDataset::Tox21,
    OgbDataset::Bace,
    OgbDataset::Bbbp,
    OgbDataset::Clintox,
    OgbDataset::Sider,
    OgbDataset::Toxcast,
    OgbDataset::Hiv,
    OgbDataset::Esol,
    OgbDataset::Freesolv,
];

impl OgbDataset {
    /// Canonical dataset name.
    pub fn name(self) -> &'static str {
        match self {
            OgbDataset::Tox21 => "TOX21",
            OgbDataset::Bace => "BACE",
            OgbDataset::Bbbp => "BBBP",
            OgbDataset::Clintox => "CLINTOX",
            OgbDataset::Sider => "SIDER",
            OgbDataset::Toxcast => "TOXCAST",
            OgbDataset::Hiv => "HIV",
            OgbDataset::Esol => "ESOL",
            OgbDataset::Freesolv => "FREESOLV",
        }
    }

    /// Paper-scale number of molecules (Table 1).
    pub fn paper_size(self) -> usize {
        match self {
            OgbDataset::Tox21 => 7831,
            OgbDataset::Bace => 1513,
            OgbDataset::Bbbp => 2039,
            OgbDataset::Clintox => 1477,
            OgbDataset::Sider => 1427,
            OgbDataset::Toxcast => 8576,
            OgbDataset::Hiv => 41_127,
            OgbDataset::Esol => 1128,
            OgbDataset::Freesolv => 642,
        }
    }

    /// Task layout (Table 1).
    pub fn task(self) -> TaskType {
        match self {
            OgbDataset::Tox21 => TaskType::BinaryClassification { tasks: 12 },
            OgbDataset::Bace => TaskType::BinaryClassification { tasks: 1 },
            OgbDataset::Bbbp => TaskType::BinaryClassification { tasks: 1 },
            OgbDataset::Clintox => TaskType::BinaryClassification { tasks: 2 },
            OgbDataset::Sider => TaskType::BinaryClassification { tasks: 27 },
            OgbDataset::Toxcast => TaskType::BinaryClassification { tasks: 12 },
            OgbDataset::Hiv => TaskType::BinaryClassification { tasks: 1 },
            OgbDataset::Esol => TaskType::Regression { targets: 1 },
            OgbDataset::Freesolv => TaskType::Regression { targets: 1 },
        }
    }

    /// Fraction of labels observed (multi-task panels have missing labels,
    /// as in OGB).
    fn label_density(self) -> f32 {
        match self {
            OgbDataset::Tox21 | OgbDataset::Toxcast => 0.85,
            OgbDataset::Sider => 0.9,
            _ => 1.0,
        }
    }

    /// Chain-padding knob to match each dataset's average molecule size
    /// (Table 1: FREESOLV 8.7 avg nodes … BACE 34.1).
    fn extra_chain(self) -> usize {
        match self {
            OgbDataset::Freesolv => 0,
            OgbDataset::Esol => 2,
            OgbDataset::Tox21 | OgbDataset::Toxcast => 4,
            OgbDataset::Bbbp | OgbDataset::Clintox | OgbDataset::Hiv => 6,
            OgbDataset::Sider => 10,
            OgbDataset::Bace => 12,
        }
    }

    /// A deterministic per-dataset seed offset, so different datasets have
    /// different label mechanisms under the same experiment seed.
    fn seed_salt(self) -> u64 {
        match self {
            OgbDataset::Tox21 => 0x11,
            OgbDataset::Bace => 0x22,
            OgbDataset::Bbbp => 0x33,
            OgbDataset::Clintox => 0x44,
            OgbDataset::Sider => 0x55,
            OgbDataset::Toxcast => 0x66,
            OgbDataset::Hiv => 0x77,
            OgbDataset::Esol => 0x88,
            OgbDataset::Freesolv => 0x99,
        }
    }
}

/// Generate an OGB-like benchmark, validating the inputs first.
///
/// # Errors
/// [`DatasetError::InvalidConfig`] when `cap` is `Some(0)` (an empty
/// dataset cannot be scaffold-split).
pub fn try_generate(
    which: OgbDataset,
    cap: Option<usize>,
    seed: u64,
) -> Result<OodBenchmark, DatasetError> {
    if cap == Some(0) {
        return Err(DatasetError::InvalidConfig(format!(
            "{}: cap must be > 0 molecules",
            which.name()
        )));
    }
    Ok(generate(which, cap, seed))
}

/// Generate an OGB-like benchmark. `cap` bounds the number of molecules
/// (`None` = paper scale); the scaffold split is 80/10/10 by scaffold
/// frequency, exactly the OGB protocol.
pub fn generate(which: OgbDataset, cap: Option<usize>, seed: u64) -> OodBenchmark {
    let n = cap.map_or(which.paper_size(), |c| c.min(which.paper_size()));
    let config = MolConfig {
        n_graphs: n,
        task: which.task(),
        label_density: which.label_density(),
        bias: 1.5,
        n_biased_scaffolds: 12,
        extra_chain: which.extra_chain(),
        motifs_per_mol: (1, 4),
    };
    let (graphs, _mech) = generate_molecules(&config, seed.wrapping_add(which.seed_salt()));
    let dataset = GraphDataset::new(which.name(), graphs, which.task());
    let split = scaffold_split(&dataset, 0.8, 0.1);
    OodBenchmark { dataset, split }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_generate_rejects_empty_cap() {
        assert!(matches!(
            try_generate(OgbDataset::Bace, Some(0), 1),
            Err(DatasetError::InvalidConfig(_))
        ));
        assert!(try_generate(OgbDataset::Bace, Some(120), 1).is_ok());
    }

    #[test]
    fn all_datasets_generate_and_split() {
        for &d in &ALL {
            let bench = generate(d, Some(120), 42);
            bench.validate().unwrap();
            assert_eq!(bench.dataset.name(), d.name());
            assert_eq!(bench.dataset.task(), d.task());
            assert!(!bench.split.train.is_empty(), "{}: empty train", d.name());
            assert!(!bench.split.test.is_empty(), "{}: empty test", d.name());
        }
    }

    #[test]
    fn scaffolds_disjoint_across_split() {
        let bench = generate(OgbDataset::Bace, Some(400), 1);
        let scaffolds = |ids: &[usize]| -> std::collections::BTreeSet<u32> {
            ids.iter()
                .map(|&i| bench.dataset.graph(i).scaffold().unwrap())
                .collect()
        };
        let tr = scaffolds(&bench.split.train);
        let te = scaffolds(&bench.split.test);
        assert!(
            tr.is_disjoint(&te),
            "train/test scaffolds overlap: {tr:?} ∩ {te:?}"
        );
    }

    #[test]
    fn sizes_roughly_ordered_like_table1() {
        // FREESOLV molecules must be smaller on average than BACE's.
        let free = generate(OgbDataset::Freesolv, Some(200), 2);
        let bace = generate(OgbDataset::Bace, Some(200), 2);
        let avg = |b: &crate::OodBenchmark| b.dataset.stats().1;
        assert!(
            avg(&free) + 4.0 < avg(&bace),
            "{} vs {}",
            avg(&free),
            avg(&bace)
        );
    }

    #[test]
    fn cap_respected_and_paper_size_reported() {
        let bench = generate(OgbDataset::Hiv, Some(100), 3);
        assert_eq!(bench.dataset.len(), 100);
        assert_eq!(OgbDataset::Hiv.paper_size(), 41_127);
    }

    #[test]
    fn regression_datasets_have_regression_labels() {
        let bench = generate(OgbDataset::Esol, Some(50), 4);
        assert!(bench.dataset.task().is_regression());
    }

    #[test]
    fn deterministic() {
        let a = generate(OgbDataset::Bbbp, Some(80), 9);
        let b = generate(OgbDataset::Bbbp, Some(80), 9);
        for (ga, gb) in a.dataset.graphs().iter().zip(b.dataset.graphs()) {
            assert_eq!(ga.edges(), gb.edges());
            assert_eq!(ga.label(), gb.label());
        }
        assert_eq!(a.split.train, b.split.train);
    }
}
