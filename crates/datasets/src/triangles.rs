//! The TRIANGLES dataset: predict the number of triangles (1–10) in random
//! graphs, training on small graphs (4–25 nodes) and testing on strictly
//! larger ones (up to 100 nodes) — the paper's size-shift synthetic
//! benchmark (§4.1.2, Table 2).
//!
//! Graphs are Erdős–Rényi with edge probability `~3/n` (keeping the
//! expected triangle count in range), rejection-sampled until the exact
//! triangle count lies in `[1, 10]`. Node features are one-hot degrees
//! clamped at a fixed maximum so train and test share a schema, exactly as
//! in the paper ("node features are set as one-hot degrees").

use crate::error::DatasetError;
use crate::OodBenchmark;
use graph::algo::{one_hot_degree_features, triangle_count};
use graph::{Graph, GraphDataset, Label, Split, TaskType};
use tensor::rng::Rng;
use tensor::Tensor;

/// Configuration for the TRIANGLES generator.
#[derive(Clone, Debug)]
pub struct TrianglesConfig {
    /// Number of training graphs (paper: 3000).
    pub n_train: usize,
    /// Number of validation graphs (paper: 500).
    pub n_val: usize,
    /// Number of OOD test graphs (paper: 500).
    pub n_test: usize,
    /// Training/validation graph size range (paper: 4–25).
    pub train_nodes: (usize, usize),
    /// Test graph size range (paper: 26–100; the paper says "4 to 100"
    /// overall with test graphs larger than training).
    pub test_nodes: (usize, usize),
    /// Degree clamp for one-hot features.
    pub max_degree: usize,
}

impl Default for TrianglesConfig {
    fn default() -> Self {
        TrianglesConfig {
            n_train: 3000,
            n_val: 500,
            n_test: 500,
            train_nodes: (4, 25),
            test_nodes: (26, 100),
            max_degree: 15,
        }
    }
}

impl TrianglesConfig {
    /// A proportionally smaller instance for fast experiments; `frac = 1.0`
    /// reproduces the paper-scale dataset.
    pub fn scaled(frac: f32) -> Self {
        let d = Self::default();
        let s = |n: usize| ((n as f32 * frac).round() as usize).max(16);
        TrianglesConfig {
            n_train: s(d.n_train),
            n_val: s(d.n_val),
            n_test: s(d.n_test),
            ..d
        }
    }
}

/// Number of triangle classes (1..=10 triangles → 10 classes).
pub const NUM_CLASSES: usize = 10;

/// Sample one graph with `n` nodes whose triangle count is in `[1, 10]`.
/// Returns the graph (label = count − 1).
fn sample_graph(n: usize, max_degree: usize, rng: &mut Rng) -> Graph {
    loop {
        let p = (3.0 / n as f32).min(0.9);
        let mut g = Graph::new(n, Tensor::zeros([n, 1]), Label::Class(0));
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.bernoulli(p) {
                    g.add_undirected_edge(i, j);
                }
            }
        }
        let t = triangle_count(&g);
        if (1..=10).contains(&t) {
            let feats = one_hot_degree_features(&g, max_degree);
            let mut g2 = Graph::new(n, feats, Label::Class(t - 1));
            for &(s, d) in g.edges() {
                g2.add_directed_edge(s as usize, d as usize);
            }
            return g2;
        }
    }
}

/// Generate the TRIANGLES benchmark, validating the configuration first.
///
/// # Errors
/// [`DatasetError::InvalidConfig`] when a split is empty, a node range is
/// inverted, or graphs are too small to ever contain a triangle (the
/// rejection sampler would spin forever).
pub fn try_generate(config: &TrianglesConfig, seed: u64) -> Result<OodBenchmark, DatasetError> {
    if config.n_train == 0 {
        return Err(DatasetError::InvalidConfig("n_train must be > 0".into()));
    }
    for (name, (lo, hi)) in [
        ("train_nodes", config.train_nodes),
        ("test_nodes", config.test_nodes),
    ] {
        if lo > hi {
            return Err(DatasetError::InvalidConfig(format!(
                "{name} range ({lo}, {hi}) is inverted"
            )));
        }
        if lo < 3 {
            return Err(DatasetError::InvalidConfig(format!(
                "{name} minimum {lo} cannot contain a triangle (need ≥ 3 nodes)"
            )));
        }
    }
    if config.max_degree == 0 {
        return Err(DatasetError::InvalidConfig("max_degree must be > 0".into()));
    }
    Ok(generate(config, seed))
}

/// Generate the TRIANGLES benchmark (dataset + size-based split).
pub fn generate(config: &TrianglesConfig, seed: u64) -> OodBenchmark {
    let mut rng = Rng::seed_from(seed);
    let mut graphs = Vec::with_capacity(config.n_train + config.n_val + config.n_test);
    let mut split = Split::default();
    for i in 0..config.n_train + config.n_val {
        let n = rng.range_inclusive(config.train_nodes.0, config.train_nodes.1);
        graphs.push(sample_graph(n, config.max_degree, &mut rng));
        if i < config.n_train {
            split.train.push(i);
        } else {
            split.val.push(i);
        }
    }
    for i in 0..config.n_test {
        let n = rng.range_inclusive(config.test_nodes.0, config.test_nodes.1);
        graphs.push(sample_graph(n, config.max_degree, &mut rng));
        split.test.push(config.n_train + config.n_val + i);
    }
    let dataset = GraphDataset::new(
        "TRIANGLES",
        graphs,
        TaskType::MultiClass {
            classes: NUM_CLASSES,
        },
    );
    OodBenchmark { dataset, split }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_generate_validates_config() {
        let bad = TrianglesConfig {
            train_nodes: (2, 1),
            ..TrianglesConfig::scaled(0.02)
        };
        assert!(matches!(
            try_generate(&bad, 1),
            Err(DatasetError::InvalidConfig(_))
        ));
        let tiny = TrianglesConfig {
            test_nodes: (2, 5),
            ..TrianglesConfig::scaled(0.02)
        };
        assert!(try_generate(&tiny, 1).is_err());
        assert!(try_generate(&TrianglesConfig::scaled(0.02), 1).is_ok());
    }

    #[test]
    fn labels_match_actual_triangle_counts() {
        let bench = generate(&TrianglesConfig::scaled(0.02), 7);
        for g in bench.dataset.graphs() {
            let t = triangle_count(g);
            assert_eq!(g.label().class(), t - 1, "label must be triangles-1");
            assert!((1..=10).contains(&t));
        }
    }

    #[test]
    fn split_respects_size_shift() {
        let cfg = TrianglesConfig::scaled(0.02);
        let bench = generate(&cfg, 3);
        bench.validate().unwrap();
        for &i in &bench.split.train {
            let n = bench.dataset.graph(i).num_nodes();
            assert!(n >= cfg.train_nodes.0 && n <= cfg.train_nodes.1);
        }
        for &i in &bench.split.test {
            let n = bench.dataset.graph(i).num_nodes();
            assert!(n >= cfg.test_nodes.0 && n <= cfg.test_nodes.1);
            assert!(
                n > cfg.train_nodes.1,
                "test graphs must be larger than training"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = TrianglesConfig::scaled(0.01);
        let a = generate(&cfg, 5);
        let b = generate(&cfg, 5);
        for (ga, gb) in a.dataset.graphs().iter().zip(b.dataset.graphs()) {
            assert_eq!(ga.num_nodes(), gb.num_nodes());
            assert_eq!(ga.edges(), gb.edges());
            assert_eq!(ga.label(), gb.label());
        }
    }

    #[test]
    fn feature_schema_shared_across_sizes() {
        let bench = generate(&TrianglesConfig::scaled(0.01), 11);
        let dim = bench.dataset.feature_dim();
        assert_eq!(dim, 16); // max_degree 15 + 1
        for g in bench.dataset.graphs() {
            assert_eq!(g.feature_dim(), dim);
        }
    }

    #[test]
    fn class_distribution_covers_several_classes() {
        let bench = generate(&TrianglesConfig::scaled(0.05), 13);
        let mut seen = [false; NUM_CLASSES];
        for g in bench.dataset.graphs() {
            seen[g.label().class()] = true;
        }
        assert!(
            seen.iter().filter(|&&s| s).count() >= 5,
            "want varied labels: {seen:?}"
        );
    }
}
