//! The [`Graph`] value type: nodes, directed edge list, dense node features
//! and a label.

use crate::dataset::Label;
use tensor::Tensor;

/// A single attributed graph with a graph-level label.
///
/// Edges are stored as a directed edge list; undirected graphs store both
/// orientations (use [`Graph::add_undirected_edge`]). Node features are a
/// dense `[num_nodes, feature_dim]` matrix.
#[derive(Clone, Debug)]
pub struct Graph {
    num_nodes: usize,
    /// Directed edges as (source, destination) node indices.
    edges: Vec<(u32, u32)>,
    features: Tensor,
    label: Label,
    /// Optional scaffold/group identifier used by scaffold splitting
    /// (OGB-style); `None` for datasets without scaffold structure.
    scaffold: Option<u32>,
}

impl Graph {
    /// Create a graph with `num_nodes` nodes, no edges, the given feature
    /// matrix (`[num_nodes, f]`) and label.
    ///
    /// # Panics
    /// Panics if the feature matrix row count disagrees with `num_nodes`.
    pub fn new(num_nodes: usize, features: Tensor, label: Label) -> Self {
        assert_eq!(
            features.shape().dim(0),
            num_nodes,
            "feature rows {} != num_nodes {num_nodes}",
            features.shape().dim(0)
        );
        Graph {
            num_nodes,
            edges: Vec::new(),
            features,
            label,
            scaffold: None,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed edges (an undirected edge counts twice).
    pub fn num_directed_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of undirected edges (directed count halved).
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// The directed edge list.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Node feature matrix `[num_nodes, f]`.
    pub fn features(&self) -> &Tensor {
        &self.features
    }

    /// Mutable node feature matrix (used by noise-injection test variants).
    pub fn features_mut(&mut self) -> &mut Tensor {
        &mut self.features
    }

    /// Feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.features.shape().dim(1)
    }

    /// Graph label.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// Replace the label.
    pub fn set_label(&mut self, label: Label) {
        self.label = label;
    }

    /// Scaffold/group id, if assigned.
    pub fn scaffold(&self) -> Option<u32> {
        self.scaffold
    }

    /// Assign a scaffold/group id (used for scaffold splits).
    pub fn set_scaffold(&mut self, scaffold: u32) {
        self.scaffold = Some(scaffold);
    }

    /// Add a directed edge.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_directed_edge(&mut self, src: usize, dst: usize) {
        assert!(
            src < self.num_nodes && dst < self.num_nodes,
            "edge ({src},{dst}) out of range"
        );
        self.edges.push((src as u32, dst as u32));
    }

    /// Add an undirected edge (records both directions).
    pub fn add_undirected_edge(&mut self, a: usize, b: usize) {
        self.add_directed_edge(a, b);
        self.add_directed_edge(b, a);
    }

    /// True if the directed edge (src, dst) exists.
    pub fn has_edge(&self, src: usize, dst: usize) -> bool {
        self.edges.contains(&(src as u32, dst as u32))
    }

    /// Out-degree of every node.
    pub fn degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.num_nodes];
        for &(s, _) in &self.edges {
            d[s as usize] += 1;
        }
        d
    }

    /// Adjacency lists (out-neighbors per node), sorted and deduplicated.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.num_nodes];
        for &(s, t) in &self.edges {
            adj[s as usize].push(t);
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        adj
    }

    /// Validate structural invariants (edge endpoints in range, features
    /// matching node count). Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.features.shape().dim(0) != self.num_nodes {
            return Err(format!(
                "feature rows {} != num_nodes {}",
                self.features.shape().dim(0),
                self.num_nodes
            ));
        }
        for &(s, t) in &self.edges {
            if s as usize >= self.num_nodes || t as usize >= self.num_nodes {
                return Err(format!("edge ({s},{t}) out of range {}", self.num_nodes));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple() -> Graph {
        let mut g = Graph::new(3, Tensor::zeros([3, 2]), Label::Class(0));
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(1, 2);
        g
    }

    #[test]
    fn edge_counts() {
        let g = simple();
        assert_eq!(g.num_directed_edges(), 4);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn degrees_and_adjacency() {
        let g = simple();
        assert_eq!(g.degrees(), vec![1, 2, 1]);
        let adj = g.adjacency();
        assert_eq!(adj[1], vec![0, 2]);
    }

    #[test]
    fn validate_ok() {
        assert!(simple().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = simple();
        g.add_directed_edge(0, 7);
    }

    #[test]
    #[should_panic(expected = "feature rows")]
    fn feature_mismatch_panics() {
        let _ = Graph::new(3, Tensor::zeros([2, 2]), Label::Class(0));
    }

    #[test]
    fn scaffold_roundtrip() {
        let mut g = simple();
        assert_eq!(g.scaffold(), None);
        g.set_scaffold(7);
        assert_eq!(g.scaffold(), Some(7));
    }
}
