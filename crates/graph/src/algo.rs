//! Classic graph algorithms used by the synthetic generators and tests:
//! exact triangle counting, connectivity, degree statistics.

use crate::graph::Graph;
use std::collections::VecDeque;

/// Exact triangle count via the node-iterator algorithm: for every node,
/// count adjacent neighbor pairs; every triangle is counted three times.
///
/// Treats the graph as undirected (edges are deduplicated symmetrically).
pub fn triangle_count(g: &Graph) -> usize {
    let adj = g.adjacency();
    let n = g.num_nodes();
    // Neighbor bitsets via sorted adjacency + binary search.
    let mut count = 0usize;
    for u in 0..n {
        let nu = &adj[u];
        for (i, &v) in nu.iter().enumerate() {
            if (v as usize) <= u {
                continue;
            }
            for &w in &nu[i + 1..] {
                if (w as usize) <= u || w == v {
                    continue;
                }
                if adj[v as usize].binary_search(&w).is_ok() {
                    count += 1;
                }
            }
        }
    }
    count
}

/// True if the graph is connected (ignoring direction). Empty and
/// single-node graphs are connected.
pub fn is_connected(g: &Graph) -> bool {
    let n = g.num_nodes();
    if n <= 1 {
        return true;
    }
    let mut adj = vec![Vec::new(); n];
    for &(s, t) in g.edges() {
        adj[s as usize].push(t as usize);
        adj[t as usize].push(s as usize);
    }
    let mut seen = vec![false; n];
    let mut queue = VecDeque::from([0usize]);
    seen[0] = true;
    let mut visited = 1usize;
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                visited += 1;
                queue.push_back(v);
            }
        }
    }
    visited == n
}

/// Undirected degree (number of distinct neighbors) of every node.
pub fn undirected_degrees(g: &Graph) -> Vec<usize> {
    g.adjacency().iter().map(|a| a.len()).collect()
}

/// The maximum undirected degree in the graph (0 for edgeless graphs).
pub fn max_degree(g: &Graph) -> usize {
    undirected_degrees(g).into_iter().max().unwrap_or(0)
}

/// Local clustering coefficient of every node: the fraction of neighbor
/// pairs that are themselves connected (0 for nodes of degree < 2).
pub fn clustering_coefficients(g: &Graph) -> Vec<f32> {
    let adj = g.adjacency();
    (0..g.num_nodes())
        .map(|u| {
            let nu = &adj[u];
            let k = nu.len();
            if k < 2 {
                return 0.0;
            }
            let mut closed = 0usize;
            for (i, &v) in nu.iter().enumerate() {
                for &w in &nu[i + 1..] {
                    if adj[v as usize].binary_search(&w).is_ok() {
                        closed += 1;
                    }
                }
            }
            2.0 * closed as f32 / (k * (k - 1)) as f32
        })
        .collect()
}

/// Mean local clustering coefficient (the graph-level clustering used to
/// distinguish the COLLAB-like classes).
pub fn average_clustering(g: &Graph) -> f32 {
    let cc = clustering_coefficients(g);
    if cc.is_empty() {
        0.0
    } else {
        cc.iter().sum::<f32>() / cc.len() as f32
    }
}

/// BFS distances (in hops) from `source`; unreachable nodes get
/// `usize::MAX`.
pub fn bfs_distances(g: &Graph, source: usize) -> Vec<usize> {
    let n = g.num_nodes();
    assert!(source < n, "source out of range");
    let mut adj = vec![Vec::new(); n];
    for &(s, t) in g.edges() {
        adj[s as usize].push(t as usize);
        adj[t as usize].push(s as usize);
    }
    let mut dist = vec![usize::MAX; n];
    dist[source] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Graph diameter (longest shortest path over reachable pairs); 0 for
/// graphs with fewer than 2 nodes.
pub fn diameter(g: &Graph) -> usize {
    let n = g.num_nodes();
    let mut best = 0usize;
    for s in 0..n {
        for &d in &bfs_distances(g, s) {
            if d != usize::MAX {
                best = best.max(d);
            }
        }
    }
    best
}

/// One-hot encode node degrees, clamped to `max_deg` (features used by the
/// TRIANGLES dataset: "node features are set as one-hot degrees").
pub fn one_hot_degree_features(g: &Graph, max_deg: usize) -> tensor::Tensor {
    let degs = undirected_degrees(g);
    let mut feats = tensor::Tensor::zeros([g.num_nodes(), max_deg + 1]);
    for (i, &d) in degs.iter().enumerate() {
        let d = d.min(max_deg);
        *feats.at_mut(i, d) = 1.0;
    }
    feats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Label;
    use tensor::Tensor;

    fn empty(n: usize) -> Graph {
        Graph::new(n, Tensor::zeros([n, 1]), Label::Class(0))
    }

    fn complete(n: usize) -> Graph {
        let mut g = empty(n);
        for i in 0..n {
            for j in (i + 1)..n {
                g.add_undirected_edge(i, j);
            }
        }
        g
    }

    #[test]
    fn triangle_count_known_graphs() {
        assert_eq!(triangle_count(&complete(3)), 1);
        assert_eq!(triangle_count(&complete(4)), 4);
        assert_eq!(triangle_count(&complete(5)), 10);
        // C(n,3) for complete graphs
        assert_eq!(triangle_count(&complete(7)), 35);
    }

    #[test]
    fn path_has_no_triangles() {
        let mut g = empty(5);
        for i in 1..5 {
            g.add_undirected_edge(i - 1, i);
        }
        assert_eq!(triangle_count(&g), 0);
    }

    #[test]
    fn cycle_four_has_no_triangles_but_with_chord_one() {
        let mut g = empty(4);
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(1, 2);
        g.add_undirected_edge(2, 3);
        g.add_undirected_edge(3, 0);
        assert_eq!(triangle_count(&g), 0);
        g.add_undirected_edge(0, 2);
        assert_eq!(triangle_count(&g), 2);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&complete(4)));
        assert!(is_connected(&empty(1)));
        let mut g = empty(4);
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(2, 3);
        assert!(!is_connected(&g));
    }

    #[test]
    fn degree_one_hot() {
        let mut g = empty(3);
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(1, 2);
        let f = one_hot_degree_features(&g, 3);
        assert_eq!(f.shape().dims(), &[3, 4]);
        assert_eq!(f.row(0), &[0., 1., 0., 0.]);
        assert_eq!(f.row(1), &[0., 0., 1., 0.]);
    }

    #[test]
    fn degree_clamped_to_max() {
        let g = complete(6); // degree 5 everywhere
        let f = one_hot_degree_features(&g, 3);
        assert_eq!(f.row(0), &[0., 0., 0., 1.]);
    }

    #[test]
    fn max_degree_works() {
        assert_eq!(max_degree(&complete(5)), 4);
        assert_eq!(max_degree(&empty(3)), 0);
    }

    #[test]
    fn clustering_of_complete_graph_is_one() {
        let cc = clustering_coefficients(&complete(5));
        assert!(cc.iter().all(|&c| (c - 1.0).abs() < 1e-6));
        assert!((average_clustering(&complete(4)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn clustering_of_path_is_zero() {
        let mut g = empty(5);
        for i in 1..5 {
            g.add_undirected_edge(i - 1, i);
        }
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn clustering_of_triangle_with_tail() {
        let mut g = empty(4);
        g.add_undirected_edge(0, 1);
        g.add_undirected_edge(1, 2);
        g.add_undirected_edge(2, 0);
        g.add_undirected_edge(2, 3);
        let cc = clustering_coefficients(&g);
        assert!((cc[0] - 1.0).abs() < 1e-6);
        assert!((cc[2] - 1.0 / 3.0).abs() < 1e-6); // 1 closed of 3 pairs
        assert_eq!(cc[3], 0.0);
    }

    #[test]
    fn bfs_distances_on_path() {
        let mut g = empty(4);
        for i in 1..4 {
            g.add_undirected_edge(i - 1, i);
        }
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(diameter(&g), 3);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let mut g = empty(3);
        g.add_undirected_edge(0, 1);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn diameter_of_complete_graph_is_one() {
        assert_eq!(diameter(&complete(6)), 1);
        assert_eq!(diameter(&empty(1)), 0);
    }
}
