//! Dataset containers, task types and labels.

use crate::graph::Graph;
use tensor::Tensor;

/// A graph-level label. The three variants correspond to the paper's three
/// task types (Table 1): multi-class classification, (multi-task) binary
/// classification and regression.
#[derive(Clone, Debug, PartialEq)]
pub enum Label {
    /// Single-label multi-class classification (class index).
    Class(usize),
    /// Multi-task binary classification: per-task {0,1} values with an
    /// observation mask (1 = observed), matching OGB's missing labels.
    MultiBinary {
        /// Per-task target in {0, 1}.
        values: Vec<f32>,
        /// Per-task observation mask in {0, 1}.
        mask: Vec<f32>,
    },
    /// Regression targets.
    Regression(Vec<f32>),
}

impl Label {
    /// The class index, panicking for non-classification labels.
    pub fn class(&self) -> usize {
        match self {
            Label::Class(c) => *c,
            other => panic!("expected Class label, got {other:?}"),
        }
    }
}

/// The prediction task of a dataset, which determines the model head size,
/// the loss and the evaluation metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskType {
    /// Multi-class classification with `classes` classes (metric: accuracy).
    MultiClass {
        /// Number of classes.
        classes: usize,
    },
    /// `tasks` parallel binary classification tasks (metric: mean ROC-AUC).
    BinaryClassification {
        /// Number of binary tasks.
        tasks: usize,
    },
    /// Regression with `targets` outputs (metric: RMSE).
    Regression {
        /// Number of regression targets.
        targets: usize,
    },
}

impl TaskType {
    /// Output dimension the model head must produce.
    pub fn output_dim(&self) -> usize {
        match self {
            TaskType::MultiClass { classes } => *classes,
            TaskType::BinaryClassification { tasks } => *tasks,
            TaskType::Regression { targets } => *targets,
        }
    }

    /// True for regression tasks (lower metric is better).
    pub fn is_regression(&self) -> bool {
        matches!(self, TaskType::Regression { .. })
    }
}

/// A named collection of graphs with uniform task and feature schema.
pub struct GraphDataset {
    name: String,
    graphs: Vec<Graph>,
    task: TaskType,
    feature_dim: usize,
}

impl GraphDataset {
    /// Build a dataset, validating that every graph shares the feature
    /// dimension and a label consistent with `task`.
    ///
    /// # Panics
    /// Panics on schema violations — generators are expected to be correct.
    pub fn new(name: impl Into<String>, graphs: Vec<Graph>, task: TaskType) -> Self {
        assert!(!graphs.is_empty(), "empty dataset");
        let feature_dim = graphs[0].feature_dim();
        for (i, g) in graphs.iter().enumerate() {
            assert_eq!(g.feature_dim(), feature_dim, "graph {i} feature dim");
            g.validate().unwrap_or_else(|e| panic!("graph {i}: {e}"));
            match (&task, g.label()) {
                (TaskType::MultiClass { classes }, Label::Class(c)) => {
                    assert!(c < classes, "graph {i} class {c} out of range");
                }
                (TaskType::BinaryClassification { tasks }, Label::MultiBinary { values, mask }) => {
                    assert_eq!(values.len(), *tasks, "graph {i} task count");
                    assert_eq!(mask.len(), *tasks, "graph {i} mask count");
                }
                (TaskType::Regression { targets }, Label::Regression(v)) => {
                    assert_eq!(v.len(), *targets, "graph {i} target count");
                }
                (t, l) => panic!("graph {i}: label {l:?} does not match task {t:?}"),
            }
        }
        GraphDataset {
            name: name.into(),
            graphs,
            task,
            feature_dim,
        }
    }

    /// Dataset name (e.g. `"TRIANGLES"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All graphs.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.graphs.len()
    }

    /// True if empty (never: construction requires ≥1 graph).
    pub fn is_empty(&self) -> bool {
        self.graphs.is_empty()
    }

    /// The prediction task.
    pub fn task(&self) -> TaskType {
        self.task
    }

    /// Node feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// A graph by index.
    pub fn graph(&self, i: usize) -> &Graph {
        &self.graphs[i]
    }

    /// Select a sub-dataset by indices (clones the graphs).
    pub fn subset(&self, indices: &[usize]) -> GraphDataset {
        let graphs = indices.iter().map(|&i| self.graphs[i].clone()).collect();
        GraphDataset {
            name: self.name.clone(),
            graphs,
            task: self.task,
            feature_dim: self.feature_dim,
        }
    }

    /// Summary statistics: (num graphs, avg nodes, avg undirected edges).
    pub fn stats(&self) -> (usize, f32, f32) {
        let n = self.len();
        let nodes: usize = self.graphs.iter().map(|g| g.num_nodes()).sum();
        let edges: usize = self.graphs.iter().map(|g| g.num_edges()).sum();
        (n, nodes as f32 / n as f32, edges as f32 / n as f32)
    }

    /// Stack class labels into a target vector (classification datasets).
    pub fn class_labels(&self, indices: &[usize]) -> Vec<usize> {
        indices
            .iter()
            .map(|&i| self.graphs[i].label().class())
            .collect()
    }

    /// Stack multi-binary labels into `(targets, mask)` matrices of shape
    /// `[n, tasks]`.
    pub fn binary_labels(&self, indices: &[usize]) -> (Tensor, Tensor) {
        let tasks = match self.task {
            TaskType::BinaryClassification { tasks } => tasks,
            t => panic!("binary_labels on {t:?}"),
        };
        let n = indices.len();
        let mut values = Tensor::zeros([n, tasks]);
        let mut mask = Tensor::zeros([n, tasks]);
        for (row, &i) in indices.iter().enumerate() {
            match self.graphs[i].label() {
                Label::MultiBinary { values: v, mask: m } => {
                    for t in 0..tasks {
                        *values.at_mut(row, t) = v[t];
                        *mask.at_mut(row, t) = m[t];
                    }
                }
                l => panic!("graph {i} label {l:?}"),
            }
        }
        (values, mask)
    }

    /// Stack regression targets into a `[n, targets]` matrix.
    pub fn regression_targets(&self, indices: &[usize]) -> Tensor {
        let targets = match self.task {
            TaskType::Regression { targets } => targets,
            t => panic!("regression_targets on {t:?}"),
        };
        let n = indices.len();
        let mut out = Tensor::zeros([n, targets]);
        for (row, &i) in indices.iter().enumerate() {
            match self.graphs[i].label() {
                Label::Regression(v) => {
                    for (t, &val) in v.iter().enumerate().take(targets) {
                        *out.at_mut(row, t) = val;
                    }
                }
                l => panic!("graph {i} label {l:?}"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_with_class(c: usize, nodes: usize) -> Graph {
        let mut g = Graph::new(nodes, Tensor::zeros([nodes, 2]), Label::Class(c));
        if nodes >= 2 {
            g.add_undirected_edge(0, 1);
        }
        g
    }

    #[test]
    fn dataset_construction_and_stats() {
        let ds = GraphDataset::new(
            "toy",
            vec![graph_with_class(0, 3), graph_with_class(1, 5)],
            TaskType::MultiClass { classes: 2 },
        );
        assert_eq!(ds.len(), 2);
        let (n, avg_nodes, avg_edges) = ds.stats();
        assert_eq!(n, 2);
        assert_eq!(avg_nodes, 4.0);
        assert_eq!(avg_edges, 1.0);
        assert_eq!(ds.class_labels(&[0, 1]), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "class 5 out of range")]
    fn class_out_of_range_rejected() {
        let _ = GraphDataset::new(
            "bad",
            vec![graph_with_class(5, 3)],
            TaskType::MultiClass { classes: 2 },
        );
    }

    #[test]
    #[should_panic(expected = "does not match task")]
    fn label_task_mismatch_rejected() {
        let _ = GraphDataset::new(
            "bad",
            vec![graph_with_class(0, 3)],
            TaskType::Regression { targets: 1 },
        );
    }

    #[test]
    fn subset_preserves_schema() {
        let ds = GraphDataset::new(
            "toy",
            vec![
                graph_with_class(0, 3),
                graph_with_class(1, 5),
                graph_with_class(0, 4),
            ],
            TaskType::MultiClass { classes: 2 },
        );
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.graph(0).num_nodes(), 4);
        assert_eq!(sub.task(), ds.task());
    }

    #[test]
    fn binary_label_stacking() {
        let mut g = Graph::new(
            2,
            Tensor::zeros([2, 1]),
            Label::MultiBinary {
                values: vec![1.0, 0.0],
                mask: vec![1.0, 0.0],
            },
        );
        g.add_undirected_edge(0, 1);
        let ds = GraphDataset::new("b", vec![g], TaskType::BinaryClassification { tasks: 2 });
        let (v, m) = ds.binary_labels(&[0]);
        assert_eq!(v.data(), &[1.0, 0.0]);
        assert_eq!(m.data(), &[1.0, 0.0]);
    }

    #[test]
    fn regression_target_stacking() {
        let g = Graph::new(1, Tensor::zeros([1, 1]), Label::Regression(vec![2.5]));
        let ds = GraphDataset::new("r", vec![g], TaskType::Regression { targets: 1 });
        let t = ds.regression_targets(&[0]);
        assert_eq!(t.data(), &[2.5]);
    }

    #[test]
    fn task_output_dims() {
        assert_eq!(TaskType::MultiClass { classes: 10 }.output_dim(), 10);
        assert_eq!(
            TaskType::BinaryClassification { tasks: 12 }.output_dim(),
            12
        );
        assert_eq!(TaskType::Regression { targets: 1 }.output_dim(), 1);
        assert!(TaskType::Regression { targets: 1 }.is_regression());
        assert!(!TaskType::MultiClass { classes: 2 }.is_regression());
    }
}
