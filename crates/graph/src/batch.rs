//! Mini-batching by disjoint union.
//!
//! A [`GraphBatch`] concatenates several graphs into one block-diagonal
//! super-graph: node features are stacked, edge endpoints are offset, and a
//! `batch` vector maps every node to its source graph — exactly the layout
//! message-passing layers and segment-pooling expect.

use crate::graph::Graph;
use std::cell::RefCell;
use std::rc::Rc;
use tensor::Tensor;

/// Lazily computed, batch-lifetime GCN normalization tensors.
///
/// Degree-derived norms are pure functions of the batch topology, but the
/// layers consume them once per *forward pass* — recomputing the O(n+E)
/// degree sweep for every layer of every epoch dwarfed the multiplies they
/// feed. The cache fills on first use and lives as long as the batch;
/// clones share the already-computed tensors (tensor storage is
/// copy-on-write, so a clone is a refcount bump).
#[derive(Clone, Default)]
pub struct NormCache(RefCell<Option<(Tensor, Tensor)>>);

/// A disjoint union of graphs prepared for batched message passing.
#[derive(Clone)]
pub struct GraphBatch {
    /// Stacked node features `[total_nodes, f]`.
    pub features: Tensor,
    /// Global edge sources.
    pub edge_src: Rc<Vec<usize>>,
    /// Global edge destinations.
    pub edge_dst: Rc<Vec<usize>>,
    /// Node → graph assignment, length `total_nodes`.
    pub batch: Rc<Vec<usize>>,
    /// Number of graphs in the batch.
    pub num_graphs: usize,
    /// Number of nodes per graph.
    pub graph_sizes: Vec<usize>,
    /// Cached GCN normalization tensors (computed on first use).
    pub norms: NormCache,
}

impl GraphBatch {
    /// Build a batch from a set of graphs (in the given order).
    ///
    /// # Panics
    /// Panics if `graphs` is empty or feature dims disagree.
    pub fn from_graphs(graphs: &[&Graph]) -> Self {
        assert!(!graphs.is_empty(), "empty batch");
        let f = graphs[0].feature_dim();
        let total_nodes: usize = graphs.iter().map(|g| g.num_nodes()).sum();
        let total_edges: usize = graphs.iter().map(|g| g.num_directed_edges()).sum();
        let mut features = Vec::with_capacity(total_nodes * f);
        let mut edge_src = Vec::with_capacity(total_edges);
        let mut edge_dst = Vec::with_capacity(total_edges);
        let mut batch = Vec::with_capacity(total_nodes);
        let mut graph_sizes = Vec::with_capacity(graphs.len());
        let mut offset = 0usize;
        for (gi, g) in graphs.iter().enumerate() {
            assert_eq!(g.feature_dim(), f, "feature dim mismatch in batch");
            features.extend_from_slice(g.features().data());
            for &(s, t) in g.edges() {
                edge_src.push(offset + s as usize);
                edge_dst.push(offset + t as usize);
            }
            batch.extend(std::iter::repeat_n(gi, g.num_nodes()));
            graph_sizes.push(g.num_nodes());
            offset += g.num_nodes();
        }
        GraphBatch {
            features: Tensor::from_vec(features, [total_nodes, f]),
            edge_src: Rc::new(edge_src),
            edge_dst: Rc::new(edge_dst),
            batch: Rc::new(batch),
            num_graphs: graphs.len(),
            graph_sizes,
            norms: NormCache::default(),
        }
    }

    /// Convenience: batch a dataset subset by indices.
    pub fn from_dataset(ds: &crate::dataset::GraphDataset, indices: &[usize]) -> Self {
        let graphs: Vec<&Graph> = indices.iter().map(|&i| ds.graph(i)).collect();
        Self::from_graphs(&graphs)
    }

    /// Total number of nodes across the batch.
    pub fn num_nodes(&self) -> usize {
        self.batch.len()
    }

    /// Total number of directed edges across the batch.
    pub fn num_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// In-degrees of every node in the batch (counting incoming directed
    /// edges), used by GCN normalization and PNA scalers.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.num_nodes()];
        for &t in self.edge_dst.iter() {
            d[t] += 1;
        }
        d
    }

    /// GCN symmetric normalization coefficients per edge:
    /// `1 / sqrt((deg(src)+1) * (deg(dst)+1))` (self-loops counted once, as
    /// in Kipf & Welling with added self-loops).
    pub fn gcn_edge_norm(&self) -> Vec<f32> {
        let deg = self.in_degrees();
        self.edge_src
            .iter()
            .zip(self.edge_dst.iter())
            .map(|(&s, &t)| {
                let ds = (deg[s] + 1) as f32;
                let dt = (deg[t] + 1) as f32;
                1.0 / (ds * dt).sqrt()
            })
            .collect()
    }

    /// Per-node self-loop coefficient for GCN: `1 / (deg+1)`.
    pub fn gcn_self_norm(&self) -> Vec<f32> {
        self.in_degrees()
            .iter()
            .map(|&d| 1.0 / (d + 1) as f32)
            .collect()
    }

    /// [`GraphBatch::gcn_edge_norm`] as an `[E, 1]` tensor, computed once
    /// per batch and shared by every layer/epoch touching it.
    pub fn gcn_edge_norm_tensor(&self) -> Tensor {
        self.cached_norms().0
    }

    /// [`GraphBatch::gcn_self_norm`] as an `[n, 1]` tensor, computed once
    /// per batch and shared by every layer/epoch touching it.
    pub fn gcn_self_norm_tensor(&self) -> Tensor {
        self.cached_norms().1
    }

    fn cached_norms(&self) -> (Tensor, Tensor) {
        let mut slot = self.norms.0.borrow_mut();
        if slot.is_none() {
            let edge = Tensor::from_vec(self.gcn_edge_norm(), [self.num_edges(), 1]);
            let node = Tensor::from_vec(self.gcn_self_norm(), [self.num_nodes(), 1]);
            *slot = Some((edge, node));
        }
        let (e, s) = slot.as_ref().unwrap();
        (e.clone(), s.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Label;

    fn g(nodes: usize, val: f32) -> Graph {
        let mut g = Graph::new(nodes, Tensor::full([nodes, 2], val), Label::Class(0));
        for i in 1..nodes {
            g.add_undirected_edge(i - 1, i);
        }
        g
    }

    #[test]
    fn batch_offsets_edges() {
        let a = g(3, 1.0);
        let b = g(2, 2.0);
        let batch = GraphBatch::from_graphs(&[&a, &b]);
        assert_eq!(batch.num_nodes(), 5);
        assert_eq!(batch.num_graphs, 2);
        assert_eq!(batch.graph_sizes, vec![3, 2]);
        // Second graph's edge 0-1 must appear as 3-4.
        assert!(batch
            .edge_src
            .iter()
            .zip(batch.edge_dst.iter())
            .any(|(&s, &t)| s == 3 && t == 4));
        assert_eq!(batch.batch.as_ref(), &vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn features_stacked_in_order() {
        let a = g(2, 1.0);
        let b = g(1, 9.0);
        let batch = GraphBatch::from_graphs(&[&a, &b]);
        assert_eq!(batch.features.row(0), &[1.0, 1.0]);
        assert_eq!(batch.features.row(2), &[9.0, 9.0]);
    }

    #[test]
    fn degrees_and_gcn_norm() {
        let a = g(3, 1.0); // path 0-1-2: degrees 1,2,1
        let batch = GraphBatch::from_graphs(&[&a]);
        assert_eq!(batch.in_degrees(), vec![1, 2, 1]);
        let norm = batch.gcn_edge_norm();
        assert_eq!(norm.len(), 4);
        // Edge 0->1: 1/sqrt(2*3)
        let expect = 1.0 / (2.0f32 * 3.0).sqrt();
        assert!((norm[0] - expect).abs() < 1e-6);
        let self_norm = batch.gcn_self_norm();
        assert!((self_norm[1] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let _ = GraphBatch::from_graphs(&[]);
    }
}
