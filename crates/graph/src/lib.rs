//! # ood-graph
//!
//! Graph data model for the OOD-GNN workspace: the [`Graph`] value type,
//! mini-batching via disjoint union ([`GraphBatch`]), dataset containers
//! with task metadata ([`GraphDataset`]), train/val/test splitting
//! strategies (random, by graph size, by scaffold), and classic graph
//! algorithms (exact triangle counting, connectivity, degrees) used by the
//! synthetic benchmark generators.

pub mod algo;
pub mod batch;
pub mod dataset;
pub mod graph;
pub mod split;

pub use batch::{GraphBatch, NormCache};
pub use dataset::{GraphDataset, Label, TaskType};
pub use graph::Graph;
pub use split::Split;
