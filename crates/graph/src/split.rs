//! Train/validation/test splitting strategies.
//!
//! Three strategies, matching the paper's Table 1 "Split Method" column:
//! random (I.I.D. control), **size-based** (train on small graphs, test on
//! larger — the TRIANGLES/COLLAB/PROTEINS/D&D shift) and **scaffold-based**
//! (structurally disjoint molecule groups — the OGB shift).

use crate::dataset::GraphDataset;
use tensor::rng::Rng;

/// Index sets for train/validation/test.
#[derive(Clone, Debug, Default)]
pub struct Split {
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation indices.
    pub val: Vec<usize>,
    /// Test indices.
    pub test: Vec<usize>,
}

impl Split {
    /// Validate that the split is a partition of disjoint indices within
    /// `len` (not necessarily covering — size splits may drop mid-range
    /// graphs).
    pub fn validate(&self, len: usize) -> Result<(), String> {
        let mut seen = vec![false; len];
        for (name, ids) in [
            ("train", &self.train),
            ("val", &self.val),
            ("test", &self.test),
        ] {
            for &i in ids {
                if i >= len {
                    return Err(format!("{name} index {i} out of range {len}"));
                }
                if seen[i] {
                    return Err(format!("index {i} appears in multiple splits"));
                }
                seen[i] = true;
            }
        }
        Ok(())
    }

    /// Total number of assigned indices.
    pub fn len(&self) -> usize {
        self.train.len() + self.val.len() + self.test.len()
    }

    /// True if all three sets are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Random (I.I.D.) split by fractions; the remainder after train and val
/// goes to test.
pub fn random_split(ds: &GraphDataset, train_frac: f32, val_frac: f32, rng: &mut Rng) -> Split {
    assert!(train_frac + val_frac < 1.0 + 1e-6, "fractions exceed 1");
    let n = ds.len();
    let perm = rng.permutation(n);
    let n_train = (n as f32 * train_frac).round() as usize;
    let n_val = (n as f32 * val_frac).round() as usize;
    Split {
        train: perm[..n_train].to_vec(),
        val: perm[n_train..(n_train + n_val).min(n)].to_vec(),
        test: perm[(n_train + n_val).min(n)..].to_vec(),
    }
}

/// Size-based OOD split: graphs with at most `max_train_nodes` nodes are
/// candidates for train/val; strictly larger graphs form the test set.
/// `train_cap` optionally limits the number of training graphs (the paper
/// trains COLLAB/D&D on 500 graphs); `val_frac` of the small graphs go to
/// validation.
pub fn size_split(
    ds: &GraphDataset,
    max_train_nodes: usize,
    train_cap: Option<usize>,
    val_frac: f32,
    rng: &mut Rng,
) -> Split {
    let mut small: Vec<usize> = Vec::new();
    let mut large: Vec<usize> = Vec::new();
    for (i, g) in ds.graphs().iter().enumerate() {
        if g.num_nodes() <= max_train_nodes {
            small.push(i);
        } else {
            large.push(i);
        }
    }
    rng.shuffle(&mut small);
    let n_val = (small.len() as f32 * val_frac).round() as usize;
    let val = small.split_off(small.len() - n_val.min(small.len()));
    let mut train = small;
    if let Some(cap) = train_cap {
        // Overflow beyond the cap joins the test set (as in the paper's
        // D&D-300 protocol: train on 500 graphs, test on the rest).
        let extra = train.split_off(cap.min(train.len()));
        large.extend(extra);
    }
    Split {
        train,
        val,
        test: large,
    }
}

/// Scaffold-based OOD split: order scaffold groups by descending size and
/// fill train, then val, then test — structurally distinct molecules end up
/// in different subsets (the OGB scaffold-split protocol).
///
/// # Panics
/// Panics if any graph lacks a scaffold id.
pub fn scaffold_split(ds: &GraphDataset, train_frac: f32, val_frac: f32) -> Split {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, g) in ds.graphs().iter().enumerate() {
        let s = g
            .scaffold()
            .unwrap_or_else(|| panic!("graph {i} has no scaffold id"));
        groups.entry(s).or_default().push(i);
    }
    // Largest scaffolds first (OGB convention) with scaffold id as
    // deterministic tiebreak.
    let mut ordered: Vec<(u32, Vec<usize>)> = groups.into_iter().collect();
    ordered.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
    let n = ds.len();
    let n_train = (n as f32 * train_frac).round() as usize;
    let n_val = (n as f32 * val_frac).round() as usize;
    let mut split = Split::default();
    for (_, members) in ordered {
        if split.train.len() + members.len() <= n_train || split.train.is_empty() {
            split.train.extend(members);
        } else if split.val.len() + members.len() <= n_val || split.val.is_empty() {
            split.val.extend(members);
        } else {
            split.test.extend(members);
        }
    }
    split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Label, TaskType};
    use crate::graph::Graph;
    use tensor::Tensor;

    fn dataset_with_sizes(sizes: &[usize]) -> GraphDataset {
        let graphs = sizes
            .iter()
            .map(|&n| {
                let mut g = Graph::new(n, Tensor::zeros([n, 1]), Label::Class(0));
                if n >= 2 {
                    g.add_undirected_edge(0, 1);
                }
                g
            })
            .collect();
        GraphDataset::new("sizes", graphs, TaskType::MultiClass { classes: 1 })
    }

    #[test]
    fn random_split_partitions() {
        let ds = dataset_with_sizes(&[3; 100]);
        let mut rng = Rng::seed_from(1);
        let s = random_split(&ds, 0.6, 0.2, &mut rng);
        assert_eq!(s.train.len(), 60);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 20);
        s.validate(100).unwrap();
    }

    #[test]
    fn size_split_separates_by_size() {
        let sizes: Vec<usize> = (0..50).map(|i| 4 + i % 30).collect();
        let ds = dataset_with_sizes(&sizes);
        let mut rng = Rng::seed_from(2);
        let s = size_split(&ds, 15, None, 0.1, &mut rng);
        s.validate(50).unwrap();
        for &i in &s.train {
            assert!(ds.graph(i).num_nodes() <= 15);
        }
        for &i in &s.test {
            assert!(ds.graph(i).num_nodes() > 15);
        }
        assert!(!s.train.is_empty() && !s.test.is_empty());
    }

    #[test]
    fn size_split_train_cap_moves_extra_to_test() {
        let ds = dataset_with_sizes(&[5; 40]);
        let mut rng = Rng::seed_from(3);
        let s = size_split(&ds, 10, Some(10), 0.0, &mut rng);
        assert_eq!(s.train.len(), 10);
        assert_eq!(s.test.len(), 30);
        s.validate(40).unwrap();
    }

    #[test]
    fn scaffold_split_keeps_groups_intact() {
        let mut graphs = Vec::new();
        for i in 0..30 {
            let mut g = Graph::new(2, Tensor::zeros([2, 1]), Label::Class(0));
            g.add_undirected_edge(0, 1);
            g.set_scaffold((i / 5) as u32); // 6 scaffolds of 5 graphs
            graphs.push(g);
        }
        let ds = GraphDataset::new("sc", graphs, TaskType::MultiClass { classes: 1 });
        let s = scaffold_split(&ds, 0.5, 0.2);
        s.validate(30).unwrap();
        assert_eq!(s.len(), 30);
        // No scaffold may span two subsets.
        let subset_of = |i: usize| -> u8 {
            if s.train.contains(&i) {
                0
            } else if s.val.contains(&i) {
                1
            } else {
                2
            }
        };
        for sc in 0..6u32 {
            let members: Vec<usize> = (0..30)
                .filter(|&i| ds.graph(i).scaffold() == Some(sc))
                .collect();
            let first = subset_of(members[0]);
            assert!(
                members.iter().all(|&m| subset_of(m) == first),
                "scaffold {sc} split across subsets"
            );
        }
    }

    #[test]
    fn scaffold_split_test_nonempty() {
        let mut graphs = Vec::new();
        for i in 0..100 {
            let mut g = Graph::new(2, Tensor::zeros([2, 1]), Label::Class(0));
            g.add_undirected_edge(0, 1);
            g.set_scaffold((i / 4) as u32);
            graphs.push(g);
        }
        let ds = GraphDataset::new("sc", graphs, TaskType::MultiClass { classes: 1 });
        let s = scaffold_split(&ds, 0.8, 0.1);
        assert!(!s.test.is_empty());
        assert!(s.train.len() >= 70);
    }

    #[test]
    fn validate_detects_overlap() {
        let s = Split {
            train: vec![0, 1],
            val: vec![1],
            test: vec![],
        };
        assert!(s.validate(3).is_err());
    }

    #[test]
    fn validate_detects_out_of_range() {
        let s = Split {
            train: vec![5],
            val: vec![],
            test: vec![],
        };
        assert!(s.validate(3).is_err());
    }
}
