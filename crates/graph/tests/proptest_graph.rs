//! Property-based tests for the graph data model: batching invariants,
//! permutation invariance of triangle counting, and split well-formedness.

use ood_graph::algo::{is_connected, triangle_count, undirected_degrees};
use ood_graph::split::{random_split, size_split};
use ood_graph::{Graph, GraphBatch, GraphDataset, Label, TaskType};
use proptest::prelude::*;
use tensor::rng::Rng;
use tensor::Tensor;

/// Strategy: a random undirected graph with `n` nodes and some edges.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..12, proptest::collection::vec((0usize..12, 0usize..12), 0..30)).prop_map(
        |(n, raw_edges)| {
            let mut g = Graph::new(n, Tensor::zeros([n, 2]), Label::Class(0));
            let mut seen = std::collections::BTreeSet::new();
            for (a, b) in raw_edges {
                let (a, b) = (a % n, b % n);
                if a != b && seen.insert((a.min(b), a.max(b))) {
                    g.add_undirected_edge(a, b);
                }
            }
            g
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn triangle_count_is_permutation_invariant(g in graph_strategy(), seed in 0u64..1000) {
        let n = g.num_nodes();
        let mut rng = Rng::seed_from(seed);
        let perm = rng.permutation(n);
        let mut h = Graph::new(n, Tensor::zeros([n, 2]), Label::Class(0));
        let mut seen = std::collections::BTreeSet::new();
        for &(a, b) in g.edges() {
            let (pa, pb) = (perm[a as usize], perm[b as usize]);
            if seen.insert((pa.min(pb), pa.max(pb))) {
                h.add_undirected_edge(pa, pb);
            }
        }
        prop_assert_eq!(triangle_count(&g), triangle_count(&h));
    }

    #[test]
    fn degrees_sum_to_twice_edges(g in graph_strategy()) {
        let total: usize = undirected_degrees(&g).iter().sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn batching_preserves_node_and_edge_counts(
        graphs in proptest::collection::vec(graph_strategy(), 1..6),
    ) {
        let refs: Vec<&Graph> = graphs.iter().collect();
        let batch = GraphBatch::from_graphs(&refs);
        let total_nodes: usize = graphs.iter().map(|g| g.num_nodes()).sum();
        let total_edges: usize = graphs.iter().map(|g| g.num_directed_edges()).sum();
        prop_assert_eq!(batch.num_nodes(), total_nodes);
        prop_assert_eq!(batch.num_edges(), total_edges);
        // Batch vector is sorted and spans all graphs.
        prop_assert!(batch.batch.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(batch.batch.last().copied(), Some(graphs.len() - 1));
        // Edges never cross graph boundaries.
        for (&s, &d) in batch.edge_src.iter().zip(batch.edge_dst.iter()) {
            prop_assert_eq!(batch.batch[s], batch.batch[d]);
        }
    }

    #[test]
    fn gcn_norms_are_positive_and_bounded(g in graph_strategy()) {
        let batch = GraphBatch::from_graphs(&[&g]);
        for v in batch.gcn_edge_norm() {
            prop_assert!(v > 0.0 && v <= 1.0);
        }
        for v in batch.gcn_self_norm() {
            prop_assert!(v > 0.0 && v <= 1.0);
        }
    }

    #[test]
    fn random_split_is_partition(n in 4usize..60, seed in 0u64..1000) {
        let graphs: Vec<Graph> = (0..n)
            .map(|_| Graph::new(2, Tensor::zeros([2, 1]), Label::Class(0)))
            .collect();
        let ds = GraphDataset::new("p", graphs, TaskType::MultiClass { classes: 1 });
        let mut rng = Rng::seed_from(seed);
        let s = random_split(&ds, 0.6, 0.2, &mut rng);
        prop_assert!(s.validate(n).is_ok());
        prop_assert_eq!(s.len(), n);
    }

    #[test]
    fn size_split_never_trains_on_large(
        sizes in proptest::collection::vec(2usize..40, 5..40),
        cutoff in 5usize..30,
        seed in 0u64..1000,
    ) {
        let graphs: Vec<Graph> = sizes
            .iter()
            .map(|&n| Graph::new(n, Tensor::zeros([n, 1]), Label::Class(0)))
            .collect();
        let ds = GraphDataset::new("s", graphs, TaskType::MultiClass { classes: 1 });
        let mut rng = Rng::seed_from(seed);
        let s = size_split(&ds, cutoff, None, 0.1, &mut rng);
        prop_assert!(s.validate(sizes.len()).is_ok());
        for &i in &s.train {
            prop_assert!(ds.graph(i).num_nodes() <= cutoff);
        }
        for &i in &s.test {
            prop_assert!(ds.graph(i).num_nodes() > cutoff);
        }
    }

    #[test]
    fn connectivity_is_monotone_under_edge_addition(g in graph_strategy()) {
        // Adding a spanning path makes any graph connected.
        let mut h = g.clone();
        for i in 1..h.num_nodes() {
            h.add_undirected_edge(i - 1, i);
        }
        prop_assert!(is_connected(&h));
    }
}
