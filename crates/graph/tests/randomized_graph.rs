//! Randomized tests for the graph data model: batching invariants,
//! permutation invariance of triangle counting, and split well-formedness.
//! Each property runs over a fixed fan of seeds through the in-tree
//! [`Rng`].

use ood_graph::algo::{is_connected, triangle_count, undirected_degrees};
use ood_graph::split::{random_split, size_split};
use ood_graph::{Graph, GraphBatch, GraphDataset, Label, TaskType};
use tensor::rng::Rng;
use tensor::Tensor;

/// A random undirected graph with 2–11 nodes and up to 29 candidate edges.
fn random_graph(rng: &mut Rng) -> Graph {
    let n = rng.range_inclusive(2, 11);
    let n_edges = rng.below(30);
    let mut g = Graph::new(n, Tensor::zeros([n, 2]), Label::Class(0));
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..n_edges {
        let (a, b) = (rng.below(n), rng.below(n));
        if a != b && seen.insert((a.min(b), a.max(b))) {
            g.add_undirected_edge(a, b);
        }
    }
    g
}

#[test]
fn triangle_count_is_permutation_invariant() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let g = random_graph(&mut rng);
        let n = g.num_nodes();
        let perm = rng.permutation(n);
        let mut h = Graph::new(n, Tensor::zeros([n, 2]), Label::Class(0));
        let mut seen = std::collections::BTreeSet::new();
        for &(a, b) in g.edges() {
            let (pa, pb) = (perm[a as usize], perm[b as usize]);
            if seen.insert((pa.min(pb), pa.max(pb))) {
                h.add_undirected_edge(pa, pb);
            }
        }
        assert_eq!(triangle_count(&g), triangle_count(&h), "seed {seed}");
    }
}

#[test]
fn degrees_sum_to_twice_edges() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let g = random_graph(&mut rng);
        let total: usize = undirected_degrees(&g).iter().sum();
        assert_eq!(total, 2 * g.num_edges(), "seed {seed}");
    }
}

#[test]
fn batching_preserves_node_and_edge_counts() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let count = rng.range_inclusive(1, 5);
        let graphs: Vec<Graph> = (0..count).map(|_| random_graph(&mut rng)).collect();
        let refs: Vec<&Graph> = graphs.iter().collect();
        let batch = GraphBatch::from_graphs(&refs);
        let total_nodes: usize = graphs.iter().map(|g| g.num_nodes()).sum();
        let total_edges: usize = graphs.iter().map(|g| g.num_directed_edges()).sum();
        assert_eq!(batch.num_nodes(), total_nodes, "seed {seed}");
        assert_eq!(batch.num_edges(), total_edges, "seed {seed}");
        // Batch vector is sorted and spans all graphs.
        assert!(batch.batch.windows(2).all(|w| w[0] <= w[1]), "seed {seed}");
        assert_eq!(
            batch.batch.last().copied(),
            Some(graphs.len() - 1),
            "seed {seed}"
        );
        // Edges never cross graph boundaries.
        for (&s, &d) in batch.edge_src.iter().zip(batch.edge_dst.iter()) {
            assert_eq!(batch.batch[s], batch.batch[d], "seed {seed}");
        }
    }
}

#[test]
fn gcn_norms_are_positive_and_bounded() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let g = random_graph(&mut rng);
        let batch = GraphBatch::from_graphs(&[&g]);
        for v in batch.gcn_edge_norm() {
            assert!(v > 0.0 && v <= 1.0, "seed {seed}: edge norm {v}");
        }
        for v in batch.gcn_self_norm() {
            assert!(v > 0.0 && v <= 1.0, "seed {seed}: self norm {v}");
        }
    }
}

#[test]
fn random_split_is_partition() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let n = rng.range_inclusive(4, 59);
        let graphs: Vec<Graph> = (0..n)
            .map(|_| Graph::new(2, Tensor::zeros([2, 1]), Label::Class(0)))
            .collect();
        let ds = GraphDataset::new("p", graphs, TaskType::MultiClass { classes: 1 });
        let s = random_split(&ds, 0.6, 0.2, &mut rng);
        assert!(s.validate(n).is_ok(), "seed {seed}");
        assert_eq!(s.len(), n, "seed {seed}");
    }
}

#[test]
fn size_split_never_trains_on_large() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let count = rng.range_inclusive(5, 39);
        let sizes: Vec<usize> = (0..count).map(|_| rng.range_inclusive(2, 39)).collect();
        let cutoff = rng.range_inclusive(5, 29);
        let graphs: Vec<Graph> = sizes
            .iter()
            .map(|&n| Graph::new(n, Tensor::zeros([n, 1]), Label::Class(0)))
            .collect();
        let ds = GraphDataset::new("s", graphs, TaskType::MultiClass { classes: 1 });
        let s = size_split(&ds, cutoff, None, 0.1, &mut rng);
        assert!(s.validate(sizes.len()).is_ok(), "seed {seed}");
        for &i in &s.train {
            assert!(
                ds.graph(i).num_nodes() <= cutoff,
                "seed {seed}: trained on large graph"
            );
        }
        for &i in &s.test {
            assert!(
                ds.graph(i).num_nodes() > cutoff,
                "seed {seed}: tested on small graph"
            );
        }
    }
}

#[test]
fn connectivity_is_monotone_under_edge_addition() {
    for seed in 0..64 {
        let mut rng = Rng::seed_from(seed);
        let g = random_graph(&mut rng);
        // Adding a spanning path makes any graph connected.
        let mut h = g.clone();
        for i in 1..h.num_nodes() {
            h.add_undirected_edge(i - 1, i);
        }
        assert!(is_connected(&h), "seed {seed}");
    }
}
