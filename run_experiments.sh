#!/bin/bash
# Regenerates every table and figure at CPU-quick scale (see EXPERIMENTS.md).
set -u
BIN=target/release
run() { echo "=== $1 ($(date +%H:%M:%S))"; shift; "$@" ; }
run table1 $BIN/table1 --frac 0.1 --ogb-cap 400            > results/table1.md
run params $BIN/params                                     > results/params.md
run fig4   $BIN/fig4_weights --frac 0.08 --ogb-cap 250 --epochs 15 --batch-size 64 --epoch-reweight 15 > results/fig4.md
run fig3   $BIN/fig3_dynamics --frac 0.08 --ogb-cap 250 --epochs 40 --batch-size 64 --epoch-reweight 10 > results/fig3.md
run complexity $BIN/complexity                             > results/complexity.md
run table3 $BIN/table3 --frac 0.12 --seeds 2 --epochs 22 --batch-size 64 --epoch-reweight 15 > results/table3.md
run table2 $BIN/table2 --frac 0.06 --seeds 2 --epochs 15 --batch-size 64 --epoch-reweight 12 > results/table2.md
run table4 $BIN/table4 --ogb-cap 250 --seeds 2 --epochs 12 --batch-size 64 --epoch-reweight 10 > results/table4.md
run fig2   $BIN/fig2_ablation --frac 0.06 --ogb-cap 250 --seeds 2 --epochs 12 --batch-size 64 --epoch-reweight 12 > results/fig2.md
run fig567 $BIN/fig567_hparams --frac 0.05 --ogb-cap 200 --seeds 1 --epochs 10 --batch-size 64 --epoch-reweight 10 > results/fig567.md
echo "ALL DONE $(date +%H:%M:%S)"

# Higher-quality runs used for the headline table/figure numbers in
# EXPERIMENTS.md (≈45 extra minutes on one core):
run table3_final $BIN/table3 --frac 0.3 --seeds 2 --epochs 28 --batch-size 64 --epoch-reweight 20 > results/table3_final.md
run fig2_final   $BIN/fig2_ablation --frac 0.25 --ogb-cap 400 --seeds 2 --epochs 25 --batch-size 64 --epoch-reweight 20 > results/fig2_final.md
run ablation_backbone $BIN/ablation_backbone --frac 0.25 --seeds 2 --epochs 25 --batch-size 64 --epoch-reweight 20 > results/ablation_backbone.md
