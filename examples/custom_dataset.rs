//! Using OOD-GNN on your own graphs: build a [`GraphDataset`] by hand,
//! define a split, and train. This is the template for plugging any
//! downstream graph-classification corpus into the library.
//!
//! The toy task: classify whether a communication network is
//! "ring-shaped" (class 0) or "star-shaped" (class 1), where the training
//! sample spuriously couples shape with a noisy feature channel.
//!
//! Run with: `cargo run --release --example custom_dataset`

use ood_gnn::prelude::*;

/// Build one graph: ring or star over `n` nodes, with 3 feature channels:
/// [1, degree/n, bias-channel]. During training the bias channel is
/// correlated with the class; at test it is pure noise.
fn make_graph(class: usize, n: usize, biased: bool, rng: &mut Rng) -> Graph {
    let mut feats = Tensor::zeros([n, 3]);
    let bias_value = if biased {
        // 85% label-correlated at train time: tempting but imperfect, so
        // reweighting has conflicting samples to amplify.
        if rng.bernoulli(0.85) {
            class as f32
        } else {
            1.0 - class as f32
        }
    } else {
        rng.unit().round() // coin flip at test time
    };
    for i in 0..n {
        *feats.at_mut(i, 0) = 1.0;
        *feats.at_mut(i, 2) = bias_value + 0.1 * rng.normal();
    }
    let mut g = Graph::new(n, feats, Label::Class(class));
    match class {
        0 => {
            for i in 0..n {
                g.add_undirected_edge(i, (i + 1) % n);
            }
        }
        _ => {
            for i in 1..n {
                g.add_undirected_edge(0, i);
            }
        }
    }
    // Fill in the degree feature now that edges exist.
    let degs = g.degrees();
    for (i, &d) in degs.iter().enumerate() {
        *g.features_mut().at_mut(i, 1) = d as f32 / n as f32;
    }
    g
}

fn main() {
    let mut rng = Rng::seed_from(77);
    let mut graphs = Vec::new();
    let mut split = Split::default();
    // 200 biased training graphs, 40 validation, 80 unbiased test graphs.
    for i in 0..320 {
        let class = rng.below(2);
        let n = rng.range_inclusive(6, 14);
        let biased = i < 240;
        graphs.push(make_graph(class, n, biased, &mut rng));
        if i < 200 {
            split.train.push(i);
        } else if i < 240 {
            split.val.push(i);
        } else {
            split.test.push(i);
        }
    }
    let dataset = GraphDataset::new(
        "rings-vs-stars",
        graphs,
        TaskType::MultiClass { classes: 2 },
    );
    let bench = OodBenchmark { dataset, split };
    bench.validate().expect("valid split");

    println!(
        "custom dataset: {} graphs ({} train / {} val / {} test), feature dim {}",
        bench.dataset.len(),
        bench.split.train.len(),
        bench.split.val.len(),
        bench.split.test.len(),
        bench.dataset.feature_dim()
    );

    let model_cfg = ModelConfig {
        hidden: 16,
        layers: 2,
        dropout: 0.0,
        ..Default::default()
    };
    let train_cfg = TrainConfig {
        epochs: 15,
        batch_size: 32,
        lr: 3e-3,
        ..Default::default()
    };

    let mut gin = GnnModel::baseline(
        BaselineKind::Gin,
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        &model_cfg,
        &mut rng,
    );
    let gin_report = train_erm(&mut gin, &bench, &train_cfg, 13);
    println!(
        "GIN     : train acc {:.3} | unbiased-test acc {:.3}",
        gin_report.train_metric, gin_report.test_metric
    );

    let ood_cfg = OodGnnConfig {
        model: model_cfg,
        train: train_cfg,
        epoch_reweight: 8,
        ..Default::default()
    };
    let mut ood = OodGnn::new(
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        ood_cfg,
        &mut rng,
    );
    let ood_report = ood.train(&bench, 13).expect("training failed");
    println!(
        "OOD-GNN : train acc {:.3} | unbiased-test acc {:.3}",
        ood_report.train_metric, ood_report.test_metric
    );
    println!("(the structural ring/star signal is perfectly predictive; a model leaning on the bias channel drops to ~50% on the unbiased test set)");
}
