//! Molecular property prediction under scaffold shift — the drug-discovery
//! scenario the paper's introduction motivates (Figure 1c): models trained
//! on molecules with one group of scaffolds must predict properties of
//! structurally distinct, unseen scaffolds.
//!
//! This example builds the BACE-like benchmark, shows why the scaffold
//! split is hard (the scaffold↔label correlation holds in training but not
//! on test scaffolds), then trains GIN vs. OOD-GNN and reports ROC-AUC.
//!
//! Run with: `cargo run --release --example molecule_scaffold_ood`

use ood_gnn::prelude::*;

fn main() {
    // BACE-like dataset, capped at 600 molecules for a fast run.
    let bench = ood_gnn::datasets::ogb::generate(OgbDataset::Bace, Some(600), 11);
    println!(
        "BACE-like: {} molecules, avg {:.1} atoms",
        bench.dataset.len(),
        bench.dataset.stats().1
    );

    // Demonstrate the spurious correlation: within the *training* split,
    // scaffold parity predicts the label far better than chance; on the
    // test scaffolds it cannot (they were never biased).
    let label_rate_by_parity = |ids: &[usize]| -> [f32; 2] {
        let mut pos = [0f32; 2];
        let mut tot = [0f32; 2];
        for &i in ids {
            let g = bench.dataset.graph(i);
            let parity = (g.scaffold().unwrap() % 2) as usize;
            if let Label::MultiBinary { values, .. } = g.label() {
                tot[parity] += 1.0;
                pos[parity] += values[0];
            }
        }
        [pos[0] / tot[0].max(1.0), pos[1] / tot[1].max(1.0)]
    };
    let train_rates = label_rate_by_parity(&bench.split.train);
    println!(
        "train scaffolds: P(active | even scaffold) = {:.2}, P(active | odd scaffold) = {:.2}  <- spurious signal",
        train_rates[0], train_rates[1]
    );

    let scaffold_of = |ids: &[usize]| -> std::collections::BTreeSet<u32> {
        ids.iter()
            .map(|&i| bench.dataset.graph(i).scaffold().unwrap())
            .collect()
    };
    println!(
        "train scaffolds {:?} vs test scaffolds {:?} (disjoint)",
        scaffold_of(&bench.split.train),
        scaffold_of(&bench.split.test)
    );

    // Train GIN vs OOD-GNN.
    let mut rng = Rng::seed_from(3);
    let model_cfg = ModelConfig {
        hidden: 32,
        layers: 3,
        dropout: 0.1,
        ..Default::default()
    };
    let train_cfg = TrainConfig {
        epochs: 15,
        batch_size: 32,
        lr: 2e-3,
        ..Default::default()
    };

    let mut gin = GnnModel::baseline(
        BaselineKind::Gin,
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        &model_cfg,
        &mut rng,
    );
    let gin_report = train_erm(&mut gin, &bench, &train_cfg, 5);
    println!(
        "GIN     : train AUC {:.3} | scaffold-OOD test AUC {:.3}",
        gin_report.train_metric, gin_report.test_metric
    );

    let ood_cfg = OodGnnConfig {
        model: model_cfg,
        train: train_cfg,
        epoch_reweight: 8,
        ..Default::default()
    };
    let mut ood = OodGnn::new(
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        ood_cfg,
        &mut rng,
    );
    let ood_report = ood.train(&bench, 5).expect("training failed");
    println!(
        "OOD-GNN : train AUC {:.3} | scaffold-OOD test AUC {:.3}",
        ood_report.train_metric, ood_report.test_metric
    );
}
