//! Inspecting what OOD-GNN's reweighting does: sample weights can remove
//! dependence that is *carried by a subpopulation* (down-weight the rows
//! that create it), which is exactly the spurious-correlation structure of
//! OOD training sets — and they provably cannot fix dependence that holds
//! for every sample (e.g. duplicated dimensions).
//!
//! The example (1) demonstrates the mechanism on a constructed
//! representation matrix via the public [`OodGnn::reweight`] API and the
//! `analysis` diagnostics, then (2) trains OOD-GNN on the PROTEINS-like
//! size-shift benchmark and summarizes the learned weight distribution.
//!
//! Run with: `cargo run --release --example weight_analysis`

use ood_gnn::core::analysis::{dependence_report, weight_stats};
use ood_gnn::prelude::*;

fn main() {
    let mut rng = Rng::seed_from(3);

    // ---------------------------------------------------------------------
    // Part 1: the mechanism. Build a representation matrix where dimension
    // 0 and 1 are strongly dependent *only within the first half of the
    // samples* (the "spurious subpopulation"); the rest are independent.
    // ---------------------------------------------------------------------
    let n = 64;
    let d = 8;
    let mut data = Vec::with_capacity(n * d);
    for i in 0..n {
        let shared = rng.normal();
        for j in 0..d {
            if i < n / 2 && j < 2 {
                data.push(shared + 0.05 * rng.normal()); // dependent pair
            } else {
                data.push(rng.normal());
            }
        }
    }
    let z = Tensor::from_vec(data, [n, d]);

    let cfg = OodGnnConfig {
        model: ModelConfig {
            hidden: d,
            layers: 2,
            dropout: 0.0,
            ..Default::default()
        },
        train: TrainConfig {
            batch_size: n,
            ..Default::default()
        },
        epoch_reweight: 120,
        weight_lr: 0.3,
        lambda: 0.002,
        // The planted dependence is linear, so use the linear variant for a
        // crisp demonstration (RFF targets nonlinear dependence).
        decorrelation: DecorrelationKind::Linear,
        ..Default::default()
    };
    let mut model = OodGnn::new(4, TaskType::MultiClass { classes: 2 }, cfg, &mut rng);

    let uniform = Tensor::ones([n]);
    let learned_vec = model
        .reweight(&z, &mut rng)
        .expect("reweight on [n, d] input");
    let learned = Tensor::from_vec(learned_vec.clone(), [n]);
    let before = dependence_report(&z, &uniform, 11).expect("one weight per row");
    let after = dependence_report(&z, &learned, 11).expect("one weight per row");
    println!("mechanism demo (dependence carried by half the samples):");
    println!(
        "  uniform weights : mean |corr| = {:.4}, max |corr| = {:.4}",
        before.mean_abs_correlation, before.max_abs_correlation
    );
    println!(
        "  learned weights : mean |corr| = {:.4}, max |corr| = {:.4}",
        after.mean_abs_correlation, after.max_abs_correlation
    );
    let dep_weight: f32 = learned_vec[..n / 2].iter().sum::<f32>() / (n / 2) as f32;
    let ind_weight: f32 = learned_vec[n / 2..].iter().sum::<f32>() / (n / 2) as f32;
    println!(
        "  avg weight of dependent rows {dep_weight:.3} vs independent rows {ind_weight:.3} (down-weighting the culprits)"
    );

    // ---------------------------------------------------------------------
    // Part 2: end-to-end on the size-shift benchmark.
    // ---------------------------------------------------------------------
    let bench = ood_gnn::datasets::social::generate(&SocialConfig::proteins25(0.3), 17);
    println!(
        "\nPROTEINS-25: {} train graphs; spurious size↔label bias = 0.85",
        bench.split.train.len()
    );
    let cfg = OodGnnConfig {
        model: ModelConfig {
            hidden: 24,
            layers: 2,
            dropout: 0.0,
            ..Default::default()
        },
        train: TrainConfig {
            epochs: 20,
            batch_size: 64,
            lr: 2e-3,
            ..Default::default()
        },
        epoch_reweight: 20,
        ..Default::default()
    };
    let mut model = OodGnn::new(
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        cfg,
        &mut rng,
    );
    let report = model.train(&bench, 5).expect("training failed");
    let stats = weight_stats(&report.final_weights);
    println!(
        "learned weights: mean {:.3} (projected to 1), std {:.3}, range [{:.3}, {:.3}], effective sample fraction {:.2}",
        stats.mean, stats.std, stats.min, stats.max, stats.effective_sample_fraction
    );
    println!(
        "OOD test accuracy: {:.3} (train {:.3})",
        report.test_metric, report.train_metric
    );
}
