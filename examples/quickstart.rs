//! Quickstart: train OOD-GNN on the TRIANGLES size-shift benchmark and
//! compare against a plain GIN baseline.
//!
//! Run with: `cargo run --release --example quickstart`

use ood_gnn::prelude::*;

fn main() {
    // 1. Generate the TRIANGLES benchmark: train on graphs with 4–25 nodes,
    //    test on strictly larger graphs (up to 100 nodes). `scaled(0.1)`
    //    uses 10% of the paper-scale dataset so this example runs in
    //    seconds; pass 1.0 for the full 3000/500/500 split.
    let bench = ood_gnn::datasets::triangles::generate(&TrianglesConfig::scaled(0.1), 42);
    println!(
        "TRIANGLES: {} train / {} val / {} test graphs, {} node features",
        bench.split.train.len(),
        bench.split.val.len(),
        bench.split.test.len(),
        bench.dataset.feature_dim()
    );

    // 2. Train a plain GIN baseline by empirical risk minimization.
    let mut rng = Rng::seed_from(0);
    let model_cfg = ModelConfig {
        hidden: 32,
        layers: 2,
        dropout: 0.1,
        ..Default::default()
    };
    let train_cfg = TrainConfig {
        epochs: 20,
        batch_size: 32,
        lr: 3e-3,
        ..Default::default()
    };
    let mut gin = GnnModel::baseline(
        BaselineKind::Gin,
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        &model_cfg,
        &mut rng,
    );
    let gin_report = train_erm(&mut gin, &bench, &train_cfg, 1);
    println!(
        "GIN      : train acc {:.3} | OOD test acc {:.3}",
        gin_report.train_metric, gin_report.test_metric
    );

    // 3. Train OOD-GNN: the same GIN backbone plus nonlinear representation
    //    decorrelation with learned sample weights (Algorithm 1).
    let ood_cfg = OodGnnConfig {
        model: model_cfg,
        train: train_cfg,
        epoch_reweight: 8,
        ..Default::default()
    };
    let mut ood = OodGnn::new(
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        ood_cfg,
        &mut rng,
    );
    let ood_report = ood.train(&bench, 1).expect("training failed");
    println!(
        "OOD-GNN  : train acc {:.3} | OOD test acc {:.3}",
        ood_report.train_metric, ood_report.test_metric
    );

    // 4. Inspect what the method learned: the per-graph sample weights.
    let (wmin, wmax) = ood_report
        .final_weights
        .iter()
        .fold((f32::MAX, f32::MIN), |(lo, hi), &w| (lo.min(w), hi.max(w)));
    println!("learned sample weights span [{wmin:.3}, {wmax:.3}] (mean is projected to 1)");
}
