//! Size generalization on PROTEINS-like graphs: train on graphs with at
//! most 25 nodes, test on graphs with up to hundreds of nodes (the
//! paper's Table 3 protocol), and inspect how each method's accuracy
//! decays with test-graph size.
//!
//! Run with: `cargo run --release --example size_generalization`

use ood_gnn::prelude::*;

fn accuracy_by_size_bucket(
    model: &mut GnnModel,
    bench: &OodBenchmark,
    rng: &mut Rng,
) -> Vec<(String, f32, usize)> {
    // Bucket test graphs by node count and evaluate each bucket.
    let buckets: [(usize, usize); 3] = [(0, 60), (61, 150), (151, usize::MAX)];
    let mut out = Vec::new();
    for (lo, hi) in buckets {
        let ids: Vec<usize> = bench
            .split
            .test
            .iter()
            .copied()
            .filter(|&i| {
                let n = bench.dataset.graph(i).num_nodes();
                n >= lo && n <= hi
            })
            .collect();
        if ids.is_empty() {
            continue;
        }
        let acc = evaluate(model, &bench.dataset, &ids, 32, rng);
        let label = if hi == usize::MAX {
            format!("{lo}+")
        } else {
            format!("{lo}-{hi}")
        };
        out.push((label, acc, ids.len()));
    }
    out
}

fn main() {
    let bench = ood_gnn::datasets::social::generate(&SocialConfig::proteins25(0.5), 21);
    println!(
        "PROTEINS-25: {} train (≤25 nodes) / {} OOD test (26+ nodes)",
        bench.split.train.len(),
        bench.split.test.len()
    );

    let mut rng = Rng::seed_from(4);
    let model_cfg = ModelConfig {
        hidden: 32,
        layers: 3,
        dropout: 0.1,
        ..Default::default()
    };
    let train_cfg = TrainConfig {
        epochs: 20,
        batch_size: 32,
        lr: 2e-3,
        ..Default::default()
    };

    // GIN baseline.
    let mut gin = GnnModel::baseline(
        BaselineKind::Gin,
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        &model_cfg,
        &mut rng,
    );
    let gin_report = train_erm(&mut gin, &bench, &train_cfg, 9);
    println!(
        "\nGIN     : train acc {:.3} | overall OOD test acc {:.3}",
        gin_report.train_metric, gin_report.test_metric
    );
    for (bucket, acc, n) in accuracy_by_size_bucket(&mut gin, &bench, &mut rng) {
        println!("  test graphs with {bucket} nodes: acc {acc:.3} (n={n})");
    }

    // OOD-GNN.
    let ood_cfg = OodGnnConfig {
        model: model_cfg,
        train: train_cfg,
        epoch_reweight: 8,
        ..Default::default()
    };
    let mut ood = OodGnn::new(
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        ood_cfg,
        &mut rng,
    );
    let ood_report = ood.train(&bench, 9).expect("training failed");
    println!(
        "\nOOD-GNN : train acc {:.3} | overall OOD test acc {:.3}",
        ood_report.train_metric, ood_report.test_metric
    );
    for (bucket, acc, n) in accuracy_by_size_bucket(ood.model_mut(), &bench, &mut rng) {
        println!("  test graphs with {bucket} nodes: acc {acc:.3} (n={n})");
    }
}
