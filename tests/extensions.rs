//! Integration tests for the library extensions: checkpointing trained
//! models, validation-based model selection, LR schedules and the
//! GAT/GraphSAGE backbones.

use ood_gnn::prelude::*;
use ood_gnn::tensor::optim::LrSchedule;
use ood_gnn::tensor::serialize::{load_module, save_module};

fn small_bench() -> OodBenchmark {
    ood_gnn::datasets::triangles::generate(&TrianglesConfig::scaled(0.02), 99)
}

#[test]
fn checkpoint_roundtrip_preserves_predictions() {
    let bench = small_bench();
    let mut rng = Rng::seed_from(1);
    let cfg = ModelConfig {
        hidden: 12,
        layers: 2,
        dropout: 0.0,
        ..Default::default()
    };
    let mut model = GnnModel::baseline(
        BaselineKind::Gin,
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        &cfg,
        &mut rng,
    );
    let train_cfg = TrainConfig {
        epochs: 3,
        batch_size: 16,
        ..Default::default()
    };
    let _ = train_erm(&mut model, &bench, &train_cfg, 2);

    let dir = std::env::temp_dir().join(format!("oodgnn_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.ckpt");
    save_module(&path, &mut model).unwrap();

    // A second model with different random init must predict identically
    // after loading the checkpoint.
    let mut model2 = GnnModel::baseline(
        BaselineKind::Gin,
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        &cfg,
        &mut rng,
    );
    load_module(&path, &mut model2).unwrap();

    let batch = GraphBatch::from_dataset(&bench.dataset, &bench.split.test[..4]);
    let out1 = {
        let mut tape = Tape::new();
        let o = model.predict(&mut tape, &batch, Mode::Eval, &mut rng);
        tape.value(o).clone()
    };
    let out2 = {
        let mut tape = Tape::new();
        let o = model2.predict(&mut tape, &batch, Mode::Eval, &mut rng);
        tape.value(o).clone()
    };
    assert!(out1.max_abs_diff(&out2) < 1e-6);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn model_selection_tracks_best_validation_epoch() {
    let bench = small_bench();
    let mut rng = Rng::seed_from(3);
    let cfg = ModelConfig {
        hidden: 12,
        layers: 2,
        dropout: 0.0,
        ..Default::default()
    };
    let mut model = GnnModel::baseline(
        BaselineKind::Gcn,
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        &cfg,
        &mut rng,
    );
    let train_cfg = TrainConfig {
        epochs: 6,
        batch_size: 16,
        eval_every: Some(2),
        ..Default::default()
    };
    let report = train_erm(&mut model, &bench, &train_cfg, 4);
    let best = report
        .best_val_metric
        .expect("eval_every should record best val");
    let test_at_best = report.test_at_best_val.expect("and the paired test metric");
    assert!((0.0..=1.0).contains(&best));
    assert!((0.0..=1.0).contains(&test_at_best));
    // Best-val accuracy can never be below the final val metric minus noise
    // tolerance: it is a maximum over evaluated epochs.
    assert!(best >= report.val_metric - 1e-6);
}

#[test]
fn oodgnn_supports_model_selection_too() {
    let bench = small_bench();
    let mut rng = Rng::seed_from(5);
    let cfg = OodGnnConfig {
        model: ModelConfig {
            hidden: 12,
            layers: 2,
            dropout: 0.0,
            ..Default::default()
        },
        train: TrainConfig {
            epochs: 4,
            batch_size: 16,
            eval_every: Some(2),
            ..Default::default()
        },
        epoch_reweight: 2,
        ..Default::default()
    };
    let mut model = OodGnn::new(
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        cfg,
        &mut rng,
    );
    let report = model.train(&bench, 6).expect("training failed");
    assert!(report.best_val_metric.is_some());
    assert!(report.test_at_best_val.is_some());
}

#[test]
fn gat_and_sage_backbones_train() {
    use ood_gnn::gnn::encoder::{ConvKind, GraphEncoder, Readout, StackedEncoder};
    let bench = small_bench();
    let mut rng = Rng::seed_from(7);
    for kind in [ConvKind::Gat { heads: 2 }, ConvKind::Sage] {
        let enc: Box<dyn GraphEncoder> = Box::new(StackedEncoder::new(
            kind,
            bench.dataset.feature_dim(),
            12,
            2,
            false,
            Readout::Mean,
            0.0,
            &mut rng,
        ));
        let mut model = GnnModel::from_encoder(enc, bench.dataset.task(), &mut rng);
        let report = train_erm(
            &mut model,
            &bench,
            &TrainConfig {
                epochs: 2,
                batch_size: 16,
                ..Default::default()
            },
            8,
        );
        assert!(report.test_metric.is_finite(), "{kind:?}");
    }
}

#[test]
fn oodgnn_runs_on_alternative_backbones() {
    use ood_gnn::gnn::encoder::ConvKind;
    let bench = small_bench();
    let mut rng = Rng::seed_from(9);
    for kind in [ConvKind::Sage, ConvKind::Gcn] {
        let cfg = OodGnnConfig {
            model: ModelConfig {
                hidden: 12,
                layers: 2,
                dropout: 0.0,
                ..Default::default()
            },
            train: TrainConfig {
                epochs: 2,
                batch_size: 16,
                ..Default::default()
            },
            epoch_reweight: 2,
            encoder: kind,
            ..Default::default()
        };
        let mut model = OodGnn::new(
            bench.dataset.feature_dim(),
            bench.dataset.task(),
            cfg,
            &mut rng,
        );
        let report = model.train(&bench, 10).expect("training failed");
        assert!(report.test_metric.is_finite(), "{kind:?}");
    }
}

#[test]
fn lr_schedule_integrates_with_training_loop() {
    // Hand-rolled loop using the schedule: the LR must actually change.
    use ood_gnn::tensor::nn::Param;
    use ood_gnn::tensor::optim::{Adam, Optimizer};
    let mut p = Param::new(Tensor::scalar(0.0));
    let mut opt = Adam::new(0.1);
    let schedule = LrSchedule::StepDecay {
        step: 2,
        gamma: 0.1,
    };
    let mut rates = Vec::new();
    for epoch in 0..4 {
        schedule.apply(&mut opt, 0.1, epoch);
        rates.push(opt.learning_rate());
        let mut tape = Tape::new();
        let x = p.bind(&mut tape);
        let loss = tape.square(x);
        let g = tape.backward(loss);
        opt.step(vec![&mut p], &g);
    }
    assert_eq!(rates, vec![0.1, 0.1, 0.010000001, 0.010000001]);
}
