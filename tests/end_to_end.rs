//! Cross-crate integration tests: full pipelines from dataset generation
//! through training to evaluation, exercising the public API exactly as
//! the examples and the experiment harness do.

use ood_gnn::prelude::*;

fn small_train_cfg(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size: 16,
        lr: 3e-3,
        ..Default::default()
    }
}

fn small_model_cfg() -> ModelConfig {
    ModelConfig {
        hidden: 16,
        layers: 2,
        dropout: 0.0,
        ..Default::default()
    }
}

#[test]
fn triangles_pipeline_baseline_and_oodgnn() {
    let bench = ood_gnn::datasets::triangles::generate(&TrianglesConfig::scaled(0.02), 1);
    bench.validate().unwrap();
    let mut rng = Rng::seed_from(2);

    let mut gin = GnnModel::baseline(
        BaselineKind::Gin,
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        &small_model_cfg(),
        &mut rng,
    );
    let base = train_erm(&mut gin, &bench, &small_train_cfg(6), 3);
    assert!(base.train_metric.is_finite() && base.test_metric.is_finite());

    let cfg = OodGnnConfig {
        model: small_model_cfg(),
        train: small_train_cfg(6),
        epoch_reweight: 3,
        ..Default::default()
    };
    let mut ood = OodGnn::new(
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        cfg,
        &mut rng,
    );
    let report = ood.train(&bench, 3).expect("training failed");
    assert!(report.test_metric.is_finite());
    assert_eq!(report.final_weights.len(), bench.split.train.len());
}

#[test]
fn multitask_molecule_pipeline() {
    // CLINTOX-like: 2 binary tasks with a scaffold split.
    let bench = ood_gnn::datasets::ogb::generate(OgbDataset::Clintox, Some(120), 5);
    bench.validate().unwrap();
    assert_eq!(
        bench.dataset.task(),
        TaskType::BinaryClassification { tasks: 2 }
    );
    let mut rng = Rng::seed_from(6);
    let mut model = GnnModel::baseline(
        BaselineKind::GcnVirtual,
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        &small_model_cfg(),
        &mut rng,
    );
    let report = train_erm(&mut model, &bench, &small_train_cfg(4), 7);
    // ROC-AUC is bounded in [0, 1].
    for m in [report.train_metric, report.val_metric, report.test_metric] {
        assert!((0.0..=1.0).contains(&m), "auc {m}");
    }
}

#[test]
fn regression_pipeline() {
    let bench = ood_gnn::datasets::ogb::generate(OgbDataset::Freesolv, Some(100), 8);
    let mut rng = Rng::seed_from(9);
    let cfg = OodGnnConfig {
        model: small_model_cfg(),
        train: small_train_cfg(5),
        epoch_reweight: 3,
        ..Default::default()
    };
    let mut ood = OodGnn::new(
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        cfg,
        &mut rng,
    );
    let report = ood.train(&bench, 10).expect("training failed");
    assert!(report.test_metric >= 0.0, "rmse must be non-negative");
    // Training should reduce the loss.
    let first = report.loss_curve[0];
    let last = *report.loss_curve.last().unwrap();
    assert!(
        last < first,
        "regression loss should fall: {first} -> {last}"
    );
}

#[test]
fn size_shift_pipeline_all_social_families() {
    for cfg in [
        SocialConfig::collab35(0.04),
        SocialConfig::proteins25(0.04),
        SocialConfig::dd200(0.04),
        SocialConfig::dd300(0.04),
    ] {
        let bench = ood_gnn::datasets::social::generate(&cfg, 11);
        bench.validate().unwrap();
        let mut rng = Rng::seed_from(12);
        let mut model = GnnModel::baseline(
            BaselineKind::Gcn,
            bench.dataset.feature_dim(),
            bench.dataset.task(),
            &small_model_cfg(),
            &mut rng,
        );
        let report = train_erm(&mut model, &bench, &small_train_cfg(2), 13);
        assert!(report.test_metric.is_finite(), "{}", cfg.name);
    }
}

#[test]
fn mnistsp_noise_variants_share_structures() {
    use ood_gnn::datasets::mnistsp::{self, NoiseVariant};
    let clean = mnistsp::generate(&MnistSpConfig::scaled(0.004), 20);
    let noise = mnistsp::generate(
        &MnistSpConfig::scaled(0.004).with_variant(NoiseVariant::Noise),
        20,
    );
    for (&i, &j) in clean.split.test.iter().zip(noise.split.test.iter()) {
        assert_eq!(
            clean.dataset.graph(i).edges(),
            noise.dataset.graph(j).edges()
        );
    }
}

#[test]
fn all_nine_baselines_run_on_one_batch() {
    let bench = ood_gnn::datasets::triangles::generate(&TrianglesConfig::scaled(0.01), 30);
    let batch = GraphBatch::from_dataset(
        &bench.dataset,
        &bench.split.train[..8.min(bench.split.train.len())],
    );
    let mut rng = Rng::seed_from(31);
    for kind in gnn::models::ALL_BASELINES {
        let mut m = GnnModel::baseline(
            kind,
            bench.dataset.feature_dim(),
            bench.dataset.task(),
            &small_model_cfg(),
            &mut rng,
        );
        let mut tape = Tape::new();
        let out = m.predict(&mut tape, &batch, Mode::Train, &mut rng);
        assert_eq!(
            tape.shape(out).dims(),
            &[batch.num_graphs, 10],
            "{}",
            kind.name()
        );
        assert!(!tape.value(out).has_non_finite(), "{}", kind.name());
    }
}

#[test]
fn determinism_across_identical_runs() {
    let bench = ood_gnn::datasets::triangles::generate(&TrianglesConfig::scaled(0.01), 40);
    let run = || {
        let mut rng = Rng::seed_from(41);
        let cfg = OodGnnConfig {
            model: small_model_cfg(),
            train: small_train_cfg(3),
            epoch_reweight: 2,
            ..Default::default()
        };
        let mut ood = OodGnn::new(
            bench.dataset.feature_dim(),
            bench.dataset.task(),
            cfg,
            &mut rng,
        );
        let r = ood.train(&bench, 42).expect("training failed");
        (r.test_metric, r.loss_curve, r.final_weights)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn oodgnn_weights_respect_constraint_after_training() {
    let bench = ood_gnn::datasets::ogb::generate(OgbDataset::Bbbp, Some(80), 50);
    let mut rng = Rng::seed_from(51);
    let cfg = OodGnnConfig {
        model: small_model_cfg(),
        train: small_train_cfg(4),
        epoch_reweight: 5,
        ..Default::default()
    };
    let mut ood = OodGnn::new(
        bench.dataset.feature_dim(),
        bench.dataset.task(),
        cfg,
        &mut rng,
    );
    let report = ood.train(&bench, 52).expect("training failed");
    assert!(report.final_weights.iter().all(|&w| w > 0.0));
    let mean: f32 = report.final_weights.iter().sum::<f32>() / report.final_weights.len() as f32;
    assert!((mean - 1.0).abs() < 0.3, "weight mean {mean}");
}
