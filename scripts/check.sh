#!/usr/bin/env bash
# Local pre-push gate: formatting, lints and the full test suite,
# mirroring .github/workflows/ci.yml. Components whose tools are not
# installed are skipped with a notice rather than failing the run.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check"
    cargo fmt --all --check || status=1
else
    echo "== cargo fmt not installed; skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy"
    cargo clippy --workspace --all-targets -- -D warnings || status=1
else
    echo "== cargo clippy not installed; skipping"
fi

echo "== cargo test (OOD_THREADS=1, pool on)"
OOD_THREADS=1 OOD_POOL=1 cargo test --workspace --quiet || status=1

echo "== cargo test (OOD_THREADS=4, pool on)"
OOD_THREADS=4 OOD_POOL=1 cargo test --workspace --quiet || status=1

echo "== cargo test (OOD_THREADS=4, pool off)"
OOD_THREADS=4 OOD_POOL=0 cargo test --workspace --quiet || status=1

echo "== fault drill (kill+resume, NaN batches, inner spikes)"
cargo run -p bench --release --bin fault_drill >/dev/null || status=1

echo "== threads sweep smoke (bitwise determinism across thread counts)"
OOD_BENCH_FAST=1 cargo run -p bench --release --bin threads_sweep >/dev/null || status=1

echo "== memory sweep smoke (pool neutrality + allocation reduction)"
OOD_BENCH_FAST=1 cargo run -p bench --release --bin mem_sweep >/dev/null || status=1

if [ "$status" -ne 0 ]; then
    echo "check.sh: FAILED" >&2
else
    echo "check.sh: all checks passed"
fi
exit "$status"
