#!/usr/bin/env bash
# Local pre-push gate: formatting, lints and the full test suite,
# mirroring .github/workflows/ci.yml. Components whose tools are not
# installed are skipped with a notice rather than failing the run.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check"
    cargo fmt --all --check || status=1
else
    echo "== cargo fmt not installed; skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy"
    cargo clippy --workspace --all-targets -- -D warnings || status=1
else
    echo "== cargo clippy not installed; skipping"
fi

echo "== cargo test (OOD_THREADS=1, pool on)"
OOD_THREADS=1 OOD_POOL=1 cargo test --workspace --quiet || status=1

echo "== cargo test (OOD_THREADS=4, pool on)"
OOD_THREADS=4 OOD_POOL=1 cargo test --workspace --quiet || status=1

echo "== cargo test (OOD_THREADS=4, pool off)"
OOD_THREADS=4 OOD_POOL=0 cargo test --workspace --quiet || status=1

echo "== fault drill (kill+resume, NaN batches, inner spikes)"
cargo run -p bench --release --bin fault_drill >/dev/null || status=1

echo "== serve drill (shed, timeout, degrade, reload, drain, stage timing) at t=1 and t=4"
OOD_THREADS=1 cargo run -p bench --release --bin serve_drill >/dev/null || status=1
OOD_THREADS=4 cargo run -p bench --release --bin serve_drill >/dev/null || status=1

echo "== serve drill, socket mode (4 TCP clients, shed/slow-client/disconnect) at t=1 and t=4"
OOD_THREADS=1 cargo run -p bench --release --bin serve_drill -- --socket >/dev/null || status=1
OOD_THREADS=4 cargo run -p bench --release --bin serve_drill -- --socket >/dev/null || status=1
sock_trace=$(ls -t results/telemetry/serve_drill_socket-*.jsonl 2>/dev/null | head -1 || true)
if [ -n "$sock_trace" ]; then
    grep -q '"name":"serve_conn_open"' "$sock_trace" || status=1
    grep -q '"name":"serve_conn_close"' "$sock_trace" || status=1
    grep -q '"name":"serve_conn_shed"' "$sock_trace" || status=1
    test -s results/serve_drill_socket.json || status=1
else
    echo "serve_drill: no recorded socket-mode trace found" >&2
    status=1
fi

echo "== serve_top replay smoke (serve_stats snapshots in the recorded drill trace)"
drill_trace=$(ls -t results/telemetry/serve_drill-*.jsonl 2>/dev/null | head -1 || true)
if [ -n "$drill_trace" ]; then
    cargo run -p bench --release --bin serve_top -- \
        --replay --once --trace "$drill_trace" \
        | grep -q '^stage_compute_p95_ms=' || status=1
else
    echo "serve_top: no recorded serve_drill trace found" >&2
    status=1
fi

# Smoke runs pass `--json -` so the fast numbers do not overwrite the
# committed full-run artifacts (results/threads_sweep.json, mem_sweep.json).
echo "== threads sweep smoke (bitwise determinism across thread counts)"
OOD_BENCH_FAST=1 cargo run -p bench --release --bin threads_sweep -- --json - >/dev/null || status=1

echo "== memory sweep smoke (pool neutrality + allocation reduction)"
OOD_BENCH_FAST=1 cargo run -p bench --release --bin mem_sweep -- --json - >/dev/null || status=1

echo "== kernel sweep smoke (bitwise simd-vs-scalar gate + per-kernel speedups)"
OOD_BENCH_FAST=1 cargo run -p bench --release --bin kernel_sweep -- --json - >/dev/null || status=1

echo "== perf gate (baseline regression check at t=1 and t=4)"
OOD_BENCH_FAST=1 OOD_THREADS=1 cargo run -p bench --release --bin perf_gate -- --tolerance 2 >/dev/null || status=1
OOD_BENCH_FAST=1 OOD_THREADS=4 cargo run -p bench --release --bin perf_gate -- --tolerance 2 >/dev/null || status=1

echo "== perf gate self-test (injected allocation spike must be caught)"
if OOD_BENCH_FAST=1 OOD_THREADS=1 cargo run -p bench --release --bin perf_gate -- --inject-alloc >/dev/null 2>&1; then
    echo "perf_gate: injected allocation spike was NOT caught" >&2
    status=1
fi

echo "== trace report smoke (span attribution covers >= 95% of wall)"
cargo run -p bench --release --bin trace_report -- --min-coverage 95 --out - >/dev/null || status=1

if [ "$status" -ne 0 ]; then
    echo "check.sh: FAILED" >&2
else
    echo "check.sh: all checks passed"
fi
exit "$status"
