#!/usr/bin/env bash
# Local pre-push gate: formatting, lints and the full test suite,
# mirroring .github/workflows/ci.yml. Components whose tools are not
# installed are skipped with a notice rather than failing the run.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

if cargo fmt --version >/dev/null 2>&1; then
    echo "== cargo fmt --check"
    cargo fmt --all --check || status=1
else
    echo "== cargo fmt not installed; skipping"
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "== cargo clippy"
    cargo clippy --workspace --all-targets -- -D warnings || status=1
else
    echo "== cargo clippy not installed; skipping"
fi

echo "== cargo test"
cargo test --workspace --quiet || status=1

echo "== fault drill (kill+resume, NaN batches, inner spikes)"
cargo run -p bench --release --bin fault_drill >/dev/null || status=1

if [ "$status" -ne 0 ]; then
    echo "check.sh: FAILED" >&2
else
    echo "check.sh: all checks passed"
fi
exit "$status"
