//! `oodgnn` — command-line trainer for the OOD-GNN reproduction.
//!
//! Train any baseline or OOD-GNN on any of the 14 built-in OOD benchmarks,
//! report train/val/OOD-test metrics, and optionally checkpoint the model:
//!
//! ```text
//! oodgnn --dataset proteins25 --method ood-gnn --epochs 30 --frac 0.3
//! oodgnn --dataset bace --method gin --ogb-cap 600 --save model.ckpt
//! oodgnn --list
//! ```

use ood_gnn::core::analysis::weight_stats;
use ood_gnn::prelude::*;
use ood_gnn::tensor::serialize::save_module;
use std::collections::BTreeMap;

fn usage() -> ! {
    eprintln!(
        "oodgnn — train GNN baselines and OOD-GNN on out-of-distribution graph benchmarks

USAGE:
    oodgnn --dataset <NAME> --method <METHOD> [OPTIONS]
    oodgnn --list

OPTIONS:
    --dataset <NAME>      triangles | mnistsp-noise | mnistsp-color | collab35 |
                          proteins25 | dd200 | dd300 | tox21 | bace | bbbp |
                          clintox | sider | toxcast | hiv | esol | freesolv
    --method <METHOD>     ood-gnn (default) | gcn | gcn-virtual | gin | gin-virtual |
                          factorgcn | pna | topkpool | sagpool
    --frac <F>            dataset scale for synthetic/TU-like benchmarks (default 0.1)
    --ogb-cap <N>         molecule count cap for OGB-like datasets (default 400; 0 = paper scale)
    --epochs <N>          training epochs (default 20)
    --batch-size <N>      mini-batch size (default 64)
    --hidden <N>          hidden dimension d (default 32)
    --layers <N>          message-passing layers (default 2)
    --lr <F>              learning rate (default 0.002)
    --epoch-reweight <N>  OOD-GNN inner weight epochs (default 15)
    --seed <N>            RNG seed (default 7)
    --save <PATH>         write a checkpoint after training
    --list                list datasets and exit"
    );
    std::process::exit(2);
}

fn parse_args() -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let mut key: Option<String> = None;
    for a in std::env::args().skip(1) {
        if let Some(k) = a.strip_prefix("--") {
            if let Some(prev) = key.take() {
                out.insert(prev, "true".into());
            }
            key = Some(k.to_string());
        } else if let Some(k) = key.take() {
            out.insert(k, a);
        } else {
            eprintln!("unexpected argument: {a}\n");
            usage();
        }
    }
    if let Some(k) = key.take() {
        out.insert(k, "true".into());
    }
    out
}

const DATASETS: [&str; 16] = [
    "triangles",
    "mnistsp-noise",
    "mnistsp-color",
    "collab35",
    "proteins25",
    "dd200",
    "dd300",
    "tox21",
    "bace",
    "bbbp",
    "clintox",
    "sider",
    "toxcast",
    "hiv",
    "esol",
    "freesolv",
];

fn build_dataset(name: &str, frac: f32, ogb_cap: Option<usize>, seed: u64) -> OodBenchmark {
    use ood_gnn::datasets::mnistsp::{self, MnistSpConfig, NoiseVariant};
    use ood_gnn::datasets::ogb::{self, OgbDataset};
    use ood_gnn::datasets::social::{self, SocialConfig};
    use ood_gnn::datasets::triangles::{self, TrianglesConfig};
    match name {
        "triangles" => triangles::generate(&TrianglesConfig::scaled(frac), seed),
        "mnistsp-noise" => mnistsp::generate(
            &MnistSpConfig::scaled(frac).with_variant(NoiseVariant::Noise),
            seed,
        ),
        "mnistsp-color" => mnistsp::generate(
            &MnistSpConfig::scaled(frac).with_variant(NoiseVariant::Color),
            seed,
        ),
        "collab35" => social::generate(&SocialConfig::collab35(frac), seed),
        "proteins25" => social::generate(&SocialConfig::proteins25(frac), seed),
        "dd200" => social::generate(&SocialConfig::dd200(frac), seed),
        "dd300" => social::generate(&SocialConfig::dd300(frac), seed),
        other => {
            let which = match other {
                "tox21" => OgbDataset::Tox21,
                "bace" => OgbDataset::Bace,
                "bbbp" => OgbDataset::Bbbp,
                "clintox" => OgbDataset::Clintox,
                "sider" => OgbDataset::Sider,
                "toxcast" => OgbDataset::Toxcast,
                "hiv" => OgbDataset::Hiv,
                "esol" => OgbDataset::Esol,
                "freesolv" => OgbDataset::Freesolv,
                _ => {
                    eprintln!("unknown dataset: {other}\n");
                    usage();
                }
            };
            ogb::generate(which, ogb_cap, seed)
        }
    }
}

fn baseline_kind(name: &str) -> Option<BaselineKind> {
    Some(match name {
        "gcn" => BaselineKind::Gcn,
        "gcn-virtual" => BaselineKind::GcnVirtual,
        "gin" => BaselineKind::Gin,
        "gin-virtual" => BaselineKind::GinVirtual,
        "factorgcn" => BaselineKind::FactorGcn,
        "pna" => BaselineKind::Pna,
        "topkpool" => BaselineKind::TopKPool,
        "sagpool" => BaselineKind::SagPool,
        _ => return None,
    })
}

fn main() {
    let args = parse_args();
    if args.contains_key("list") {
        println!("datasets:");
        for d in DATASETS {
            println!("  {d}");
        }
        return;
    }
    let Some(dataset) = args.get("dataset") else {
        usage()
    };
    let method = args.get("method").map(String::as_str).unwrap_or("ood-gnn");
    let get_f = |k: &str, d: f32| args.get(k).map(|v| v.parse().expect(k)).unwrap_or(d);
    let get_u = |k: &str, d: usize| args.get(k).map(|v| v.parse().expect(k)).unwrap_or(d);
    let frac = get_f("frac", 0.1);
    let ogb_cap = match get_u("ogb-cap", 400) {
        0 => None,
        n => Some(n),
    };
    let seed = get_u("seed", 7) as u64;

    // Validate the method before paying for dataset generation.
    if method != "ood-gnn" && baseline_kind(method).is_none() {
        eprintln!("unknown method: {method}\n");
        usage();
    }

    let bench = build_dataset(dataset, frac, ogb_cap, seed);
    let (n, avg_nodes, avg_edges) = bench.dataset.stats();
    let metric_name = if bench.dataset.task().is_regression() {
        "RMSE (lower is better)"
    } else {
        match bench.dataset.task() {
            TaskType::MultiClass { .. } => "accuracy",
            _ => "ROC-AUC",
        }
    };
    println!(
        "{}: {n} graphs (avg {avg_nodes:.1} nodes / {avg_edges:.1} edges), split {}/{}/{}, metric: {metric_name}",
        bench.dataset.name(),
        bench.split.train.len(),
        bench.split.val.len(),
        bench.split.test.len(),
    );

    let model_cfg = ModelConfig {
        hidden: get_u("hidden", 32),
        layers: get_u("layers", 2),
        dropout: 0.1,
        ..Default::default()
    };
    let train_cfg = TrainConfig {
        epochs: get_u("epochs", 20),
        batch_size: get_u("batch-size", 64),
        lr: get_f("lr", 2e-3),
        ..Default::default()
    };

    let mut rng = Rng::seed_from(seed);
    println!("training {method} for {} epochs ...", train_cfg.epochs);
    if let Some(kind) = baseline_kind(method) {
        let mut model = GnnModel::baseline(
            kind,
            bench.dataset.feature_dim(),
            bench.dataset.task(),
            &model_cfg,
            &mut rng,
        );
        let r = train_erm(&mut model, &bench, &train_cfg, seed ^ 0x5151);
        println!(
            "train {:.4} | val {:.4} | OOD test {:.4}",
            r.train_metric, r.val_metric, r.test_metric
        );
        if let Some(path) = args.get("save") {
            save_module(path, &mut model).expect("failed to save checkpoint");
            println!("checkpoint written to {path}");
        }
    } else if method == "ood-gnn" {
        let cfg = OodGnnConfig {
            model: model_cfg,
            train: train_cfg,
            epoch_reweight: get_u("epoch-reweight", 15),
            ..Default::default()
        };
        let mut model = OodGnn::new(
            bench.dataset.feature_dim(),
            bench.dataset.task(),
            cfg,
            &mut rng,
        );
        let r = model.train(&bench, seed ^ 0x5151).expect("training failed");
        let w = weight_stats(&r.final_weights);
        println!(
            "train {:.4} | val {:.4} | OOD test {:.4}",
            r.train_metric, r.val_metric, r.test_metric
        );
        println!(
            "learned weights: std {:.3}, range [{:.3}, {:.3}], effective sample fraction {:.2}",
            w.std, w.min, w.max, w.effective_sample_fraction
        );
        if let Some(path) = args.get("save") {
            save_module(path, model.model_mut()).expect("failed to save checkpoint");
            println!("checkpoint written to {path}");
        }
    } else {
        eprintln!("unknown method: {method}\n");
        usage();
    }
}
