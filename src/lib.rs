//! # ood-gnn
//!
//! A pure-Rust reproduction of **"OOD-GNN: Out-of-Distribution Generalized
//! Graph Neural Network"** (Li, Wang, Zhang, Zhu — ICDE 2024 / TKDE).
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`tensor`] — dense tensors + reverse-mode autodiff + NN layers +
//!   optimizers (the PyTorch substitute).
//! * [`graph`] — graph data model, batching, splits, graph algorithms.
//! * [`datasets`] — synthetic OOD benchmarks (TRIANGLES, MNIST-75SP-like,
//!   COLLAB/PROTEINS/D&D-like, nine OGB-like molecule datasets) + metrics.
//! * [`gnn`] — GNN layers, pooling, the eight baseline models, ERM
//!   training.
//! * [`core`] — OOD-GNN itself: RFF decorrelation, sample reweighting, the
//!   global–local weight estimator and Algorithm 1.
//!
//! ## Quickstart
//!
//! ```
//! use ood_gnn::prelude::*;
//!
//! // A small TRIANGLES benchmark with a train-on-small / test-on-large split.
//! let bench = ood_gnn::datasets::triangles::generate(
//!     &TrianglesConfig::scaled(0.01), 42);
//!
//! // Train OOD-GNN for a couple of epochs.
//! let mut rng = Rng::seed_from(0);
//! let mut config = OodGnnConfig::default();
//! config.train.epochs = 2;
//! config.epoch_reweight = 2;
//! config.model.hidden = 8;
//! let mut model = OodGnn::new(
//!     bench.dataset.feature_dim(), bench.dataset.task(), config, &mut rng);
//! let report = model.train(&bench, 7).expect("training failed");
//! assert!(report.test_metric.is_finite());
//! ```

pub use datasets;
pub use gnn;
pub use graph;
pub use oodgnn_core as core;
pub use tensor;

/// Commonly used items for examples and downstream code.
pub mod prelude {
    pub use crate::core::{DecorrelationKind, GlobalMemory, OodGnn, OodGnnConfig, OodGnnReport};
    pub use datasets::mnistsp::MnistSpConfig;
    pub use datasets::ogb::OgbDataset;
    pub use datasets::social::SocialConfig;
    pub use datasets::triangles::TrianglesConfig;
    pub use datasets::OodBenchmark;
    pub use gnn::models::{BaselineKind, GnnModel, ModelConfig};
    pub use gnn::trainer::{evaluate, train_erm, TrainConfig};
    pub use graph::{Graph, GraphBatch, GraphDataset, Label, Split, TaskType};
    pub use tensor::rng::Rng;
    pub use tensor::{Mode, Tape, Tensor};
}
